package bennett

import (
	"testing"
	"testing/quick"

	"revft/internal/bitvec"
	"revft/internal/rng"
)

// runCompiled executes the reversible form on packed inputs and returns the
// packed outputs plus whether the circuit was garbage-free (inputs restored,
// work wires zero).
func runCompiled(t *testing.T, cp *Compiled, in uint64) (out uint64, clean bool) {
	t.Helper()
	st := bitvec.New(cp.Circuit.Width())
	for i, w := range cp.InputWires {
		st.Set(w, in>>uint(i)&1 == 1)
	}
	cp.Circuit.Run(st)
	clean = true
	for i, w := range cp.InputWires {
		if st.Get(w) != (in>>uint(i)&1 == 1) {
			clean = false
		}
	}
	for _, w := range cp.WorkWires {
		if st.Get(w) {
			clean = false
		}
	}
	for j, w := range cp.OutputWires {
		if st.Get(w) {
			out |= 1 << uint(j)
		}
	}
	return out, clean
}

func testNetCompiles(t *testing.T, n *Net, name string) {
	t.Helper()
	cp, err := Compile(n)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for in := uint64(0); in < 1<<uint(n.Inputs); in++ {
		got, clean := runCompiled(t, cp, in)
		if want := n.Eval(in); got != want {
			t.Fatalf("%s(%b): reversible %b, irreversible %b", name, in, got, want)
		}
		if !clean {
			t.Fatalf("%s(%b): garbage left behind", name, in)
		}
	}
}

func TestFullAdderNet(t *testing.T) {
	n := FullAdderNet()
	// Direct evaluation sanity first.
	for in := uint64(0); in < 8; in++ {
		a, b, cin := in&1, in>>1&1, in>>2&1
		want := a + b + cin
		got := n.Eval(in)
		if got&1 != want&1 || got>>1 != want>>1 {
			t.Fatalf("full adder eval(%03b) = %02b, want sum=%d", in, got, want)
		}
	}
	testNetCompiles(t, n, "full adder")
}

func TestMajorityNet(t *testing.T) {
	n := MajorityNet()
	for in := uint64(0); in < 8; in++ {
		ones := in&1 + in>>1&1 + in>>2&1
		want := uint64(0)
		if ones >= 2 {
			want = 1
		}
		if got := n.Eval(in); got != want {
			t.Fatalf("majority eval(%03b) = %b, want %b", in, got, want)
		}
	}
	testNetCompiles(t, n, "majority")
}

func TestParityNet(t *testing.T) {
	for _, bits := range []int{2, 3, 5} {
		n := ParityNet(bits)
		for in := uint64(0); in < 1<<uint(bits); in++ {
			want := uint64(0)
			for i := 0; i < bits; i++ {
				want ^= in >> uint(i) & 1
			}
			if got := n.Eval(in); got != want {
				t.Fatalf("parity%d eval(%b) = %b, want %b", bits, in, got, want)
			}
		}
		testNetCompiles(t, n, "parity")
	}
}

func TestMuxNet(t *testing.T) {
	n := MuxNet()
	for in := uint64(0); in < 8; in++ {
		sel, a, b := in&1 == 1, in>>1&1, in>>2&1
		want := a
		if sel {
			want = b
		}
		if got := n.Eval(in); got != want {
			t.Fatalf("mux eval(%03b) = %b, want %b", in, got, want)
		}
	}
	testNetCompiles(t, n, "mux")
}

func TestRippleAdderNet(t *testing.T) {
	const bits = 3
	n := RippleAdderNet(bits)
	for a := uint64(0); a < 1<<bits; a++ {
		for b := uint64(0); b < 1<<bits; b++ {
			in := a | b<<bits
			if got, want := n.Eval(in), a+b; got != want {
				t.Fatalf("adder eval: %d+%d = %d, want %d", a, b, got, want)
			}
		}
	}
	testNetCompiles(t, n, "ripple adder")
}

func TestValidateRejectsBadNets(t *testing.T) {
	bad := []*Net{
		{Inputs: 2, Gates: []NetGate{{Type: AND, A: 0, B: 2}}, Outputs: []int{2}}, // forward ref
		{Inputs: 2, Gates: []NetGate{{Type: AND, A: -1, B: 0}}, Outputs: []int{2}},
		{Inputs: 2, Gates: []NetGate{{Type: GateType(99), A: 0, B: 1}}, Outputs: []int{2}},
		{Inputs: 2, Outputs: []int{5}}, // output out of range
		{Inputs: 2},                    // no outputs
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("bad net %d validated", i)
		}
		if _, err := Compile(n); err == nil {
			t.Errorf("bad net %d compiled", i)
		}
	}
}

// TestCompiledIsReversible: the compiled circuit composed with its inverse
// is the identity, and it contains no Init3.
func TestCompiledIsReversible(t *testing.T) {
	cp, err := Compile(FullAdderNet())
	if err != nil {
		t.Fatal(err)
	}
	inv, err := cp.Circuit.Inverse()
	if err != nil {
		t.Fatalf("compiled circuit not reversible: %v", err)
	}
	for in := uint64(0); in < 16; in++ {
		if got := inv.Eval(cp.Circuit.Eval(in)); got != in {
			t.Fatalf("inverse round trip failed on %b", in)
		}
	}
}

// TestGateOverheads pins the per-gate reversible cost.
func TestGateOverheads(t *testing.T) {
	want := map[GateType]int{AND: 1, NAND: 2, XOR: 2, NOT: 2, OR: 6, NOR: 5}
	for g, w := range want {
		if got := GateOverhead(g); got != w {
			t.Errorf("%s overhead = %d, want %d", g, got, w)
		}
	}
}

// Property: random well-formed netlists compile to equivalent, garbage-free
// reversible circuits.
func TestPropRandomNetlists(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		inputs := 2 + r.Intn(4)
		ngates := 1 + r.Intn(10)
		net := &Net{Inputs: inputs}
		types := []GateType{AND, OR, XOR, NAND, NOR, NOT}
		for i := 0; i < ngates; i++ {
			limit := inputs + i
			net.Gates = append(net.Gates, NetGate{
				Type: types[r.Intn(len(types))],
				A:    r.Intn(limit),
				B:    r.Intn(limit),
			})
		}
		// Expose the last few signals.
		total := inputs + ngates
		for j := 0; j < 1+r.Intn(3); j++ {
			net.Outputs = append(net.Outputs, total-1-j%total)
		}
		if err := net.Validate(); err != nil {
			return false
		}
		cp, err := Compile(net)
		if err != nil {
			return false
		}
		for in := uint64(0); in < 1<<uint(inputs); in++ {
			st := bitvec.New(cp.Circuit.Width())
			for i, w := range cp.InputWires {
				st.Set(w, in>>uint(i)&1 == 1)
			}
			cp.Circuit.Run(st)
			var out uint64
			for j, w := range cp.OutputWires {
				if st.Get(w) {
					out |= 1 << uint(j)
				}
			}
			if out != net.Eval(in) {
				return false
			}
			for _, w := range cp.WorkWires {
				if st.Get(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompileRippleAdder8(b *testing.B) {
	n := RippleAdderNet(8)
	for i := 0; i < b.N; i++ {
		if _, err := Compile(n); err != nil {
			b.Fatal(err)
		}
	}
}
