package bennett

// A small library of standard netlists, used by examples and tests.

// FullAdderNet returns a 1-bit full adder: inputs (a, b, cin), outputs
// (sum, cout).
func FullAdderNet() *Net {
	// Signals: 0=a 1=b 2=cin
	// 3 = a XOR b
	// 4 = s3 XOR cin      (sum)
	// 5 = a AND b
	// 6 = s3 AND cin
	// 7 = s5 OR s6        (cout)
	return &Net{
		Inputs: 3,
		Gates: []NetGate{
			{Type: XOR, A: 0, B: 1},
			{Type: XOR, A: 3, B: 2},
			{Type: AND, A: 0, B: 1},
			{Type: AND, A: 3, B: 2},
			{Type: OR, A: 5, B: 6},
		},
		Outputs: []int{4, 7},
	}
}

// MajorityNet returns the 3-input majority function as NAND logic.
func MajorityNet() *Net {
	// maj(a,b,c) = ¬(¬(a∧b) ∧ ¬(a∧c) ∧ ¬(b∧c)) via NANDs:
	// 3 = NAND(a,b); 4 = NAND(a,c); 5 = NAND(b,c)
	// 6 = NAND(3,4); hmm three-way: 7 = NAND(3,5)... use AND/NOT instead:
	// 6 = AND(3,4); 7 = AND(6,5); 8 = NOT(7)
	return &Net{
		Inputs: 3,
		Gates: []NetGate{
			{Type: NAND, A: 0, B: 1},
			{Type: NAND, A: 0, B: 2},
			{Type: NAND, A: 1, B: 2},
			{Type: AND, A: 3, B: 4},
			{Type: AND, A: 6, B: 5},
			{Type: NOT, A: 7},
		},
		Outputs: []int{8},
	}
}

// ParityNet returns the n-input parity function (XOR chain).
func ParityNet(n int) *Net {
	if n < 2 {
		panic("bennett: parity needs at least 2 inputs")
	}
	net := &Net{Inputs: n}
	prev := 0
	for i := 1; i < n; i++ {
		net.Gates = append(net.Gates, NetGate{Type: XOR, A: prev, B: i})
		prev = n + i - 1
	}
	net.Outputs = []int{prev}
	return net
}

// MuxNet returns a 2:1 multiplexer: inputs (sel, a, b), output
// sel ? b : a.
func MuxNet() *Net {
	// 3 = NOT sel; 4 = a AND s3; 5 = b AND sel; 6 = 4 OR 5
	return &Net{
		Inputs: 3,
		Gates: []NetGate{
			{Type: NOT, A: 0},
			{Type: AND, A: 1, B: 3},
			{Type: AND, A: 2, B: 0},
			{Type: OR, A: 4, B: 5},
		},
		Outputs: []int{6},
	}
}

// RippleAdderNet returns an n-bit ripple-carry adder as a netlist: inputs
// a0..a(n-1), b0..b(n-1); outputs s0..s(n-1), carry.
func RippleAdderNet(n int) *Net {
	if n < 1 {
		panic("bennett: adder needs at least 1 bit")
	}
	net := &Net{Inputs: 2 * n}
	sig := 2 * n // next signal index
	carry := -1  // no carry into bit 0
	var outs []int
	for i := 0; i < n; i++ {
		a, b := i, n+i
		if carry < 0 {
			// Half adder for bit 0.
			net.Gates = append(net.Gates,
				NetGate{Type: XOR, A: a, B: b}, // sum
				NetGate{Type: AND, A: a, B: b}, // carry
			)
			outs = append(outs, sig)
			carry = sig + 1
			sig += 2
			continue
		}
		// Full adder.
		net.Gates = append(net.Gates,
			NetGate{Type: XOR, A: a, B: b},            // sig: t = a^b
			NetGate{Type: XOR, A: sig, B: carry},      // sig+1: sum
			NetGate{Type: AND, A: a, B: b},            // sig+2: g = ab
			NetGate{Type: AND, A: sig, B: carry},      // sig+3: p = t·cin
			NetGate{Type: OR, A: sig + 2, B: sig + 3}, // sig+4: cout
		)
		outs = append(outs, sig+1)
		carry = sig + 4
		sig += 5
	}
	net.Outputs = append(outs, carry)
	return net
}
