package exact

import (
	"testing"

	"revft/internal/core"
	"revft/internal/gate"
	"revft/internal/threshold"
)

// These tests pin the analytic model in internal/threshold against the
// oracle's exact one-level polynomial for the complete level-1 MAJ gadget.
// Both bounds in the chain are deterministic, so the assertions are exact
// relations, not statistical ones:
//
//	oracle P(ε) ≤ ExactLogicalRate(ε, G) ≤ LogicalBound(ε, G)
//
// — the true failure probability under the paper's model, the tighter
// binomial-tail bound the paper mentions, and Equation 1's double
// relaxation, in that order.

func TestAnalyticBoundsDominateOracle(t *testing.T) {
	poly, err := Enumerate(Gadget(core.NewGadget(gate.MAJ, 1)), Options{MaxWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	const g = threshold.GNonLocalInit
	for _, eps := range []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2} {
		_, hi := poly.Bounds(eps) // upper bound: every unenumerated pattern fails
		exact := threshold.ExactLogicalRate(eps, g)
		bound := threshold.LogicalBound(eps, g)
		if hi > exact {
			t.Errorf("ε=%v: oracle P ≤ %v exceeds ExactLogicalRate = %v", eps, hi, exact)
		}
		if exact > bound {
			t.Errorf("ε=%v: ExactLogicalRate = %v exceeds Equation 1 bound = %v", eps, exact, bound)
		}
	}
}

// TestThresholdOrdering: each tightening of the analysis moves the implied
// threshold up. Equation 1's ρ = 1/(3·C(G,2)), the exact-recursion
// threshold, and the oracle's pseudo-threshold 1/A₂ must be strictly
// ordered — the measured quadratic coefficient (A₂ = 825/64 ≈ 12.9 versus
// the assumed 3·C(11,2) = 165) is where the slack comes from.
func TestThresholdOrdering(t *testing.T) {
	poly, err := Enumerate(Gadget(core.NewGadget(gate.MAJ, 1)), Options{MaxWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	const g = threshold.GNonLocalInit
	rho := threshold.MustThreshold(g)
	exact := threshold.ExactThreshold(g)
	pseudo := 1 / poly.CoeffFloat(2)
	if !(rho < exact && exact < pseudo) {
		t.Fatalf("want ρ < exact < 1/A₂, got %v, %v, %v", rho, exact, pseudo)
	}
}
