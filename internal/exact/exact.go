// Package exact is the exhaustive fault-enumeration oracle: it computes
// the *exact* failure probability of a fault-tolerant circuit under the
// paper's randomizing fault channel, with no sampling error, by walking
// every fault pattern up to a weight cutoff (or all 2^N patterns for small
// circuits).
//
// The channel faults each of a circuit's N gate locations independently
// with probability ε, and a faulted op's target bits are replaced by a
// uniform local value (which may coincide with the ideal one). Averaging
// over uniform logical inputs, the failure probability is the polynomial
//
//	P(ε) = Σ_k A_k ε^k (1−ε)^(N−k),
//
// where A_k is the total failure mass of all weight-k fault patterns. The
// oracle computes each A_k exactly as a rational number: it is a sum of
// integer failure counts divided by powers of two (the uniform-value and
// uniform-input normalizations), so every coefficient is held as integer
// counters and exposed via math/big.Rat — float64 never enters the
// enumeration, only the final evaluation.
//
// A_0 = 0 is noiseless correctness; A_1 = 0 is exactly the paper's §2.2
// claim that every single fault in the recovery is corrected; A_2 is the
// exact quadratic coefficient that Equation 1 bounds by 3·C(G,2).
//
// Enumeration shares work across patterns: a depth-first walk over the ops
// branches, at each fault location, into the no-fault continuation and the
// 2^arity injected values, so all patterns that agree on a prefix share
// its execution. States are packed into a uint64 (one bit per wire), which
// caps targets at 64 wires — far beyond the level-1 constructions the
// repo proves things about.
package exact

import (
	"fmt"
	"math"
	"math/big"

	"revft/internal/circuit"
	"revft/internal/gate"
)

// Target is one experiment the oracle can enumerate: a circuit, the
// codeword wire blocks of its logical inputs and outputs, and the ideal
// logical function. It mirrors the shape of core.Gadget so gadgets,
// recovery circuits, and arbitrary plain circuits all fit.
type Target struct {
	Name    string
	Circuit *circuit.Circuit
	// In[i] and Out[i] list the physical wires of logical operand i's
	// codeword before and after the circuit, in code.Decode order. Block
	// lengths must be powers of three (length 1 = an unencoded wire).
	In  [][]int
	Out [][]int
	// Logical is the ideal function on packed logical values: bit i of
	// the argument is operand i, bit j of the result is output j.
	Logical func(in uint64) uint64
}

// Options configures an enumeration.
type Options struct {
	// MaxWeight caps the fault-pattern weight. Values <= 0 or >= the
	// number of fault locations select full enumeration of all 2^N
	// patterns, making the resulting polynomial exact at every ε rather
	// than a truncation with tail bounds.
	MaxWeight int
	// SkipInit excludes Init3 ops from the fault locations, matching the
	// noise.PerfectInit accounting (G = 9 instead of G = 11 for the
	// recovery). Init3 ops still execute ideally.
	SkipInit bool
	// MaxLeaves bounds the enumeration size (leaf executions, summed over
	// logical inputs); Enumerate refuses budgets above it rather than
	// silently running for hours. 0 selects 5e8, comfortably above the
	// full recovery enumeration (2·9^8 ≈ 8.6e7).
	MaxLeaves float64
}

const defaultMaxLeaves = 5e8

// Poly is the enumerated failure polynomial P(ε) = Σ_k A_k ε^k(1−ε)^(N−k).
// The coefficients are stored as integer failure counters split by the
// total arity of the faulted ops, so they are exact rationals.
type Poly struct {
	Name string
	// N is the number of fault locations, NIn the number of logical input
	// bits averaged over, MaxWeight the enumerated weight cutoff (equal to
	// N when the enumeration is full).
	N, NIn, MaxWeight int
	// SkipInit records whether Init3 ops were excluded from the fault
	// locations (the noise.PerfectInit accounting).
	SkipInit bool
	// fail[k][b] counts the (pattern, values, input) leaf executions of
	// weight k and total faulted arity b that decoded incorrectly;
	// leaves[k][b] counts all such executions. The weight-k coefficient is
	// A_k = Σ_b fail[k][b] / 2^(b+NIn).
	fail   [][]int64
	leaves [][]int64
}

// Locations returns N, the number of fault locations enumerated over.
func (p *Poly) Locations() int { return p.N }

// Exact reports whether the enumeration covered all 2^N patterns, making
// Eval exact with a zero tail bound.
func (p *Poly) Exact() bool { return p.MaxWeight >= p.N }

// FailurePatterns returns the integer count of weight-k (pattern, fault
// values, logical input) combinations that failed. Zero at k = 0 is
// noiseless correctness; zero at k = 1 is single-fault tolerance.
func (p *Poly) FailurePatterns(k int) int64 {
	if k < 0 || k > p.MaxWeight {
		return 0
	}
	var n int64
	for _, f := range p.fail[k] {
		n += f
	}
	return n
}

// Patterns returns the total number of weight-k leaf executions examined.
func (p *Poly) Patterns(k int) int64 {
	if k < 0 || k > p.MaxWeight {
		return 0
	}
	var n int64
	for _, f := range p.leaves[k] {
		n += f
	}
	return n
}

// SingleFaultTolerant reports whether no zero- or single-fault pattern
// fails — the exhaustive form of the paper's §2.2 claim. It panics if the
// enumeration did not reach weight 1.
func (p *Poly) SingleFaultTolerant() bool {
	if p.MaxWeight < 1 {
		panic("exact: SingleFaultTolerant needs MaxWeight >= 1")
	}
	return p.FailurePatterns(0) == 0 && p.FailurePatterns(1) == 0
}

// Coeff returns A_k as an exact rational: the average over uniform inputs
// and uniform fault values of the weight-k failure indicator, summed over
// all weight-k location subsets.
func (p *Poly) Coeff(k int) *big.Rat {
	out := new(big.Rat)
	if k < 0 || k > p.MaxWeight {
		return out
	}
	for b, f := range p.fail[k] {
		if f == 0 {
			continue
		}
		den := new(big.Int).Lsh(big.NewInt(1), uint(b+p.NIn))
		out.Add(out, new(big.Rat).SetFrac(big.NewInt(f), den))
	}
	return out
}

// CoeffFloat is Coeff rounded to float64.
func (p *Poly) CoeffFloat(k int) float64 {
	if k < 0 || k > p.MaxWeight {
		return 0
	}
	v := 0.0
	for b, f := range p.fail[k] {
		if f != 0 {
			v += float64(f) * math.Pow(0.5, float64(b+p.NIn))
		}
	}
	return v
}

// Eval returns the enumerated part of P(ε): exact when Exact(), otherwise
// a lower bound whose gap is at most TailBound(eps).
func (p *Poly) Eval(eps float64) float64 {
	if eps < 0 || eps > 1 {
		panic(fmt.Sprintf("exact: Eval at ε = %v outside [0,1]", eps))
	}
	v := 0.0
	for k := 0; k <= p.MaxWeight; k++ {
		a := p.CoeffFloat(k)
		if a == 0 {
			continue
		}
		v += a * math.Pow(eps, float64(k)) * math.Pow(1-eps, float64(p.N-k))
	}
	return v
}

// TailBound bounds the truncated mass: the probability that more than
// MaxWeight of the N locations fault. Every unexamined pattern fails in
// the worst case, so the true P(ε) lies in [Eval, Eval+TailBound]. The
// bound is 0 for a full enumeration.
func (p *Poly) TailBound(eps float64) float64 {
	if p.Exact() {
		return 0
	}
	v := 0.0
	binom := 1.0
	for k := 0; k <= p.N; k++ {
		if k > p.MaxWeight {
			v += binom * math.Pow(eps, float64(k)) * math.Pow(1-eps, float64(p.N-k))
		}
		binom *= float64(p.N-k) / float64(k+1)
	}
	return v
}

// Bounds returns the exact interval [lo, hi] containing the true failure
// probability at ε. For a full enumeration lo == hi.
func (p *Poly) Bounds(eps float64) (lo, hi float64) {
	lo = p.Eval(eps)
	hi = lo + p.TailBound(eps)
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String summarizes the polynomial's leading structure.
func (p *Poly) String() string {
	kind := "exact"
	if !p.Exact() {
		kind = fmt.Sprintf("truncated at weight %d", p.MaxWeight)
	}
	s := fmt.Sprintf("%s: N=%d locations (%s)", p.Name, p.N, kind)
	for k := 0; k <= p.MaxWeight && k <= 3; k++ {
		s += fmt.Sprintf(", A%d=%.6g", k, p.CoeffFloat(k))
	}
	return s
}

// popOp is one op lowered for packed-state execution: the local
// permutation table plus a precomputed spread table mapping a local value
// to its placement on the target wires.
type popOp struct {
	t0, t1, t2 int
	arity      int
	mask       uint64 // OR of the target wire bits
	perm       []uint8
	sp         [8]uint64 // sp[v] = local value v spread onto the targets
	faultable  bool
}

type enum struct {
	ops    []popOp
	maxW   int
	want   uint64 // packed ideal logical outputs for the current input
	out    [][]int
	fail   [][]int64
	leaves [][]int64
}

// Enumerate walks every fault pattern of t up to o.MaxWeight, for every
// logical input, and returns the failure polynomial.
func Enumerate(t Target, o Options) (*Poly, error) {
	c := t.Circuit
	if c == nil {
		return nil, fmt.Errorf("exact: %s: nil circuit", t.Name)
	}
	if c.Width() > 64 {
		return nil, fmt.Errorf("exact: %s: width %d exceeds the packed-state limit of 64 wires", t.Name, c.Width())
	}
	if t.Logical == nil {
		return nil, fmt.Errorf("exact: %s: nil logical function", t.Name)
	}
	nin := len(t.In)
	if nin > 20 {
		return nil, fmt.Errorf("exact: %s: %d logical inputs means %d input states; refusing", t.Name, nin, 1<<uint(nin))
	}
	for _, blocks := range [2][][]int{t.In, t.Out} {
		for _, wires := range blocks {
			if !isPowerOfThree(len(wires)) {
				return nil, fmt.Errorf("exact: %s: codeword block of %d wires is not a power of three", t.Name, len(wires))
			}
			for _, w := range wires {
				if w < 0 || w >= c.Width() {
					return nil, fmt.Errorf("exact: %s: wire %d out of range [0,%d)", t.Name, w, c.Width())
				}
			}
		}
	}

	e := &enum{ops: make([]popOp, 0, c.Len()), out: t.Out}
	n := 0 // fault locations
	c.Each(func(_ int, k gate.Kind, targets []int) {
		op := popOp{arity: len(targets), perm: k.Permutation()}
		op.t0 = targets[0]
		op.t1, op.t2 = op.t0, op.t0
		if op.arity > 1 {
			op.t1 = targets[1]
		}
		if op.arity > 2 {
			op.t2 = targets[2]
		}
		for v := 0; v < 1<<uint(op.arity); v++ {
			var s uint64
			for i, w := range targets {
				s |= uint64(v) >> uint(i) & 1 << uint(w)
			}
			op.sp[v] = s
		}
		op.mask = op.sp[1<<uint(op.arity)-1]
		op.faultable = !(o.SkipInit && k == gate.Init3)
		if op.faultable {
			n++
		}
		e.ops = append(e.ops, op)
	})

	maxW := o.MaxWeight
	if maxW <= 0 || maxW > n {
		maxW = n
	}
	e.maxW = maxW

	budget := o.MaxLeaves
	if budget <= 0 {
		budget = defaultMaxLeaves
	}
	if est := leafEstimate(e.ops, maxW) * math.Pow(2, float64(nin)); est > budget {
		return nil, fmt.Errorf("exact: %s: enumeration needs ~%.3g leaf executions, over the budget of %.3g; lower Options.MaxWeight", t.Name, est, budget)
	}

	e.fail = make([][]int64, maxW+1)
	e.leaves = make([][]int64, maxW+1)
	for k := range e.fail {
		e.fail[k] = make([]int64, 3*k+1)
		e.leaves[k] = make([]int64, 3*k+1)
	}

	nout := len(t.Out)
	for in := uint64(0); in < 1<<uint(nin); in++ {
		var st uint64
		for i, wires := range t.In {
			if in>>uint(i)&1 == 1 {
				for _, w := range wires {
					st |= 1 << uint(w)
				}
			}
		}
		e.want = t.Logical(in) & (1<<uint(nout) - 1)
		e.walk(st, 0, 0, 0)
	}

	return &Poly{
		Name: t.Name, N: n, NIn: nin, MaxWeight: maxW, SkipInit: o.SkipInit,
		fail: e.fail, leaves: e.leaves,
	}, nil
}

// walk advances the depth-first enumeration: apply op opIdx ideally and
// recurse, then (if the op is a fault location and budget remains) recurse
// once per possible injected local value. w is the pattern weight so far,
// abits the total arity of the faulted ops.
func (e *enum) walk(state uint64, opIdx, w, abits int) {
	if opIdx == len(e.ops) {
		e.leaves[w][abits]++
		if e.decodeFails(state) {
			e.fail[w][abits]++
		}
		return
	}
	o := &e.ops[opIdx]
	var in uint64
	switch o.arity {
	case 3:
		in = state>>uint(o.t0)&1 | state>>uint(o.t1)&1<<1 | state>>uint(o.t2)&1<<2
	case 2:
		in = state>>uint(o.t0)&1 | state>>uint(o.t1)&1<<1
	default:
		in = state >> uint(o.t0) & 1
	}
	base := state &^ o.mask
	e.walk(base|o.sp[o.perm[in]], opIdx+1, w, abits)
	if o.faultable && w < e.maxW {
		for v := 0; v < 1<<uint(o.arity); v++ {
			e.walk(base|o.sp[v], opIdx+1, w+1, abits+o.arity)
		}
	}
}

// decodeFails majority-decodes every output block of the packed final
// state and compares against the ideal logical outputs.
func (e *enum) decodeFails(state uint64) bool {
	for i, wires := range e.out {
		if decodePacked(state, wires) != (e.want>>uint(i)&1 == 1) {
			return true
		}
	}
	return false
}

// decodePacked recursively majority-decodes a block of 3^L wires from the
// packed state.
func decodePacked(state uint64, wires []int) bool {
	if len(wires) == 1 {
		return state>>uint(wires[0])&1 == 1
	}
	third := len(wires) / 3
	a := decodePacked(state, wires[:third])
	b := decodePacked(state, wires[third:2*third])
	c := decodePacked(state, wires[2*third:])
	return a && b || b && c || a && c
}

// leafEstimate returns the exact number of leaf executions per logical
// input: the DP L_i(w) = L_{i+1}(w) + [faultable_i, w>0]·2^arity·L_{i+1}(w−1)
// evaluated at the first op with the full weight budget.
func leafEstimate(ops []popOp, maxW int) float64 {
	cur := make([]float64, maxW+1)
	next := make([]float64, maxW+1)
	for w := range cur {
		cur[w] = 1
	}
	for i := len(ops) - 1; i >= 0; i-- {
		o := &ops[i]
		for w := 0; w <= maxW; w++ {
			next[w] = cur[w]
			if o.faultable && w > 0 {
				next[w] += float64(int(1)<<uint(o.arity)) * cur[w-1]
			}
		}
		cur, next = next, cur
	}
	return cur[maxW]
}

func isPowerOfThree(n int) bool {
	if n < 1 {
		return false
	}
	for n%3 == 0 {
		n /= 3
	}
	return n == 1
}
