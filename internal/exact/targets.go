package exact

import (
	"fmt"

	"revft/internal/circuit"
	"revft/internal/core"
)

// Recovery returns the target for the paper's Figure 2 recovery circuit
// E: one logical bit encoded on the data wires, recovered onto the output
// wires, ideal behaviour the identity. Its full enumeration (2·9^8 leaf
// executions) is what proves §2.2's single-fault claim exhaustively.
func Recovery() Target {
	return Target{
		Name:    "recovery",
		Circuit: core.Recovery(),
		In:      [][]int{append([]int(nil), core.RecoveryDataWires...)},
		Out:     [][]int{append([]int(nil), core.RecoveryOutputWires...)},
		Logical: func(in uint64) uint64 { return in & 1 },
	}
}

// Gadget wraps a fault-tolerant logical gate (the extended rectangle of
// §2.2) as an oracle target. Level-1 gadgets (27 ops) enumerate fully up
// to weight 2–3; deeper levels need tighter MaxWeight cutoffs.
func Gadget(g *core.Gadget) Target {
	return Target{
		Name:    fmt.Sprintf("gadget-%s-L%d", g.Kind, g.Level),
		Circuit: g.Circuit,
		In:      g.In,
		Out:     g.Out,
		Logical: g.Kind.Eval,
	}
}

// Plain wraps an arbitrary circuit as its own target: every wire is an
// unencoded length-1 "codeword" and the ideal behaviour is the circuit's
// noiseless action. This is the shape the property-based differential
// tests use for random circuits.
func Plain(name string, c *circuit.Circuit) Target {
	w := c.Width()
	in := make([][]int, w)
	out := make([][]int, w)
	for i := 0; i < w; i++ {
		in[i] = []int{i}
		out[i] = []int{i}
	}
	return Target{Name: name, Circuit: c, In: in, Out: out, Logical: c.Eval}
}
