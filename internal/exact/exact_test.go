package exact

import (
	"math"
	"math/big"
	"testing"

	"revft/internal/bitvec"
	"revft/internal/circuit"
	"revft/internal/core"
	"revft/internal/gate"
	"revft/internal/noise"
	"revft/internal/rng"
	"revft/internal/sim"
	"revft/internal/threshold"
)

// TestNOTChainClosedForm pins the oracle against a hand-derivable case: a
// chain of N NOT gates on one wire. A fault replaces the wire with a
// uniform bit, so only the last fault matters and it is wrong with
// probability 1/2: P(ε) = (1 − (1−ε)^N)/2, i.e. A_k = C(N,k)/2 exactly
// for every k ≥ 1.
func TestNOTChainClosedForm(t *testing.T) {
	const n = 6
	c := circuit.New(1)
	for i := 0; i < n; i++ {
		c.NOT(0)
	}
	p, err := Enumerate(Plain("not-chain", c), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Exact() || p.N != n {
		t.Fatalf("poly = %v, want exact with N = %d", p, n)
	}
	if got := p.Coeff(0); got.Sign() != 0 {
		t.Fatalf("A0 = %v, want 0", got)
	}
	binom := int64(1)
	for k := 1; k <= n; k++ {
		binom = binom * int64(n-k+1) / int64(k)
		want := big.NewRat(binom, 2)
		if got := p.Coeff(k); got.Cmp(want) != 0 {
			t.Fatalf("A%d = %v, want %v", k, got, want)
		}
	}
	for _, eps := range []float64{0, 1e-3, 0.1, 0.5, 1} {
		want := (1 - math.Pow(1-eps, n)) / 2
		if got := p.Eval(eps); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Eval(%v) = %v, want closed form %v", eps, got, want)
		}
	}
}

// TestRecoveryFullEnumeration is the tentpole claim: the full 2·9^8-leaf
// enumeration of the Figure 2 recovery proves every single-fault pattern
// corrected and extracts the exact quadratic coefficient.
func TestRecoveryFullEnumeration(t *testing.T) {
	opts := Options{}
	if testing.Short() {
		opts.MaxWeight = 3
	}
	p, err := Enumerate(Recovery(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != core.RecoveryOps {
		t.Fatalf("N = %d, want %d", p.N, core.RecoveryOps)
	}
	if !p.SingleFaultTolerant() {
		t.Fatalf("recovery not single-fault tolerant: %d zero-fault and %d single-fault failures",
			p.FailurePatterns(0), p.FailurePatterns(1))
	}
	// Every op is arity 3, so weight-1 coverage is 8 ops × 8 values × 2
	// inputs = 128 leaf executions.
	if got := p.Patterns(1); got != 128 {
		t.Fatalf("weight-1 patterns = %d, want 128", got)
	}
	// The exact quadratic coefficient of the Figure 2 recovery is 71/32.
	// This is a pinned oracle value: any executor or decoder regression
	// that shifts a single fault pattern moves it.
	if got, want := p.Coeff(2), big.NewRat(71, 32); got.Cmp(want) != 0 {
		t.Fatalf("A2 = %v, want %v", got, want)
	}
	if bound := 3 * threshold.Choose(core.RecoveryOps, 2); p.CoeffFloat(2) > bound {
		t.Fatalf("A2 = %v exceeds the all-pairs-malignant bound %v", p.CoeffFloat(2), bound)
	}

	// A truncated enumeration must agree coefficient-for-coefficient on
	// the weights it covers.
	tr, err := Enumerate(Recovery(), Options{MaxWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 2; k++ {
		if p.Coeff(k).Cmp(tr.Coeff(k)) != 0 {
			t.Fatalf("weight-%d coefficient differs between full (%v) and truncated (%v) runs",
				k, p.Coeff(k), tr.Coeff(k))
		}
	}
	// And its interval must bracket the full evaluation.
	for _, eps := range []float64{1e-3, 1e-2, 0.1} {
		lo, hi := tr.Bounds(eps)
		if v := p.Eval(eps); v < lo || v > hi {
			t.Fatalf("ε=%v: full P = %v outside truncated bounds [%v, %v]", eps, v, lo, hi)
		}
	}
}

// TestRecoverySkipInit checks the G = 9 accounting: with Init3 exempt the
// recovery has 6 fault locations and stays single-fault tolerant.
func TestRecoverySkipInit(t *testing.T) {
	p, err := Enumerate(Recovery(), Options{SkipInit: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != core.GNoInit-3 {
		t.Fatalf("N = %d, want %d non-Init ops", p.N, core.GNoInit-3)
	}
	if !p.SingleFaultTolerant() {
		t.Fatal("recovery with perfect init not single-fault tolerant")
	}
	full, err := Enumerate(Recovery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.CoeffFloat(2) > full.CoeffFloat(2) {
		t.Fatalf("excluding Init3 faults raised A2: %v > %v", p.CoeffFloat(2), full.CoeffFloat(2))
	}
}

// TestGadgetMatchesPairEnumeration anchors the oracle's A2 to the
// independent pair enumeration in core: two different exhaustive
// implementations must agree to rounding error, and stay under Equation
// 1's 3·C(G,2) with G = 11.
func TestGadgetMatchesPairEnumeration(t *testing.T) {
	g := core.NewGadget(gate.MAJ, 1)
	p, err := Enumerate(Gadget(g), Options{MaxWeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 27 {
		t.Fatalf("N = %d, want 27 level-1 ops", p.N)
	}
	if !p.SingleFaultTolerant() {
		t.Fatal("level-1 MAJ gadget not single-fault tolerant")
	}
	want := g.QuadraticCoefficient()
	if got := p.CoeffFloat(2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("oracle A2 = %v, pair enumeration c2 = %v", got, want)
	}
	// Pinned: the level-1 MAJ gadget's exact quadratic coefficient.
	if got, pin := p.Coeff(2), big.NewRat(825, 64); got.Cmp(pin) != 0 {
		t.Fatalf("A2 = %v, want pinned %v", got, pin)
	}
	if bound := 3 * threshold.Choose(threshold.GNonLocalInit, 2); p.CoeffFloat(2) > bound {
		t.Fatalf("A2 = %v exceeds Equation 1's %v", p.CoeffFloat(2), bound)
	}
}

// TestRandomCircuitsMatchRunInjected cross-validates the packed-state
// executor against the bitvec path: on random circuits, the oracle's
// integer weight-0/1/2 failure counts must equal a brute-force recount
// through sim.RunInjected.
func TestRandomCircuitsMatchRunInjected(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := rng.New(seed)
		width := 2 + r.Intn(4) // 2..5
		nops := 2 + r.Intn(4)  // 2..5
		c := circuit.Random(r, width, nops, nil)
		tgt := Plain("rand", c)
		p, err := Enumerate(tgt, Options{MaxWeight: 2})
		if err != nil {
			t.Fatal(err)
		}

		arity := make([]int, c.Len())
		for i := range arity {
			arity[i] = c.Op(i).Kind.Arity()
		}
		nin := uint64(1) << uint(width)
		countFails := func(plan noise.Plan) int64 {
			var fails int64
			for in := uint64(0); in < nin; in++ {
				want := c.Eval(in)
				st := bitvec.FromUint(in, width)
				sim.RunInjected(c, st, plan)
				if st.Uint(0, width) != want {
					fails++
				}
			}
			return fails
		}

		if got := countFails(noise.Plan{}); got != p.FailurePatterns(0) {
			t.Fatalf("seed %d: weight-0 failures %d, oracle %d", seed, got, p.FailurePatterns(0))
		}
		var w1 int64
		for i := 0; i < c.Len(); i++ {
			for a := uint64(0); a < 1<<uint(arity[i]); a++ {
				w1 += countFails(noise.Plan{i: a})
			}
		}
		if w1 != p.FailurePatterns(1) {
			t.Fatalf("seed %d: weight-1 failures %d, oracle %d", seed, w1, p.FailurePatterns(1))
		}
		var w2 int64
		for i := 0; i < c.Len(); i++ {
			for j := i + 1; j < c.Len(); j++ {
				for a := uint64(0); a < 1<<uint(arity[i]); a++ {
					for b := uint64(0); b < 1<<uint(arity[j]); b++ {
						w2 += countFails(noise.Plan{i: a, j: b})
					}
				}
			}
		}
		if w2 != p.FailurePatterns(2) {
			t.Fatalf("seed %d: weight-2 failures %d, oracle %d", seed, w2, p.FailurePatterns(2))
		}
	}
}

func TestEnumerateErrors(t *testing.T) {
	if _, err := Enumerate(Plain("wide", circuit.New(65).NOT(64)), Options{}); err == nil {
		t.Fatal("width 65 did not error")
	}
	if _, err := Enumerate(Target{Name: "nilfn", Circuit: circuit.New(1).NOT(0), In: [][]int{{0}}, Out: [][]int{{0}}}, Options{}); err == nil {
		t.Fatal("nil Logical did not error")
	}
	bad := Target{
		Name: "badblock", Circuit: circuit.New(2).NOT(0),
		In: [][]int{{0, 1}}, Out: [][]int{{0, 1}},
		Logical: func(in uint64) uint64 { return in },
	}
	if _, err := Enumerate(bad, Options{}); err == nil {
		t.Fatal("two-wire codeword block did not error")
	}
	g := core.NewGadget(gate.MAJ, 1)
	if _, err := Enumerate(Gadget(g), Options{MaxLeaves: 1000}); err == nil {
		t.Fatal("budget overflow did not error")
	}
	if _, err := Enumerate(Gadget(g), Options{}); err == nil {
		t.Fatal("full 27-op enumeration slipped under the default budget")
	}
}

func TestTailBound(t *testing.T) {
	p, err := Enumerate(Recovery(), Options{MaxWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With A0 = A1 = 0 the enumerated part is zero everywhere; the truth
	// lies entirely in the tail.
	for _, eps := range []float64{0.01, 0.1} {
		if v := p.Eval(eps); v != 0 {
			t.Fatalf("Eval(%v) = %v, want 0 below weight 2", eps, v)
		}
		tail := p.TailBound(eps)
		// The tail is P[Binomial(8, eps) >= 2].
		want := 1 - math.Pow(1-eps, 8) - 8*eps*math.Pow(1-eps, 7)
		if math.Abs(tail-want) > 1e-12 {
			t.Fatalf("TailBound(%v) = %v, want binomial tail %v", eps, tail, want)
		}
	}
	if tail := p.TailBound(0); tail != 0 {
		t.Fatalf("TailBound(0) = %v", tail)
	}
}
