module revft

go 1.22
