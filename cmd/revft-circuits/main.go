// Command revft-circuits renders the paper's circuits as ASCII gate arrays
// (space vertical, time horizontal) together with their gate-count audits.
//
// Usage:
//
//	revft-circuits [-fig 1|2|4|5|6|7|adder|cycle1d|cycle2d|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"revft/internal/adder"
	"revft/internal/circuit"
	"revft/internal/core"
	"revft/internal/gate"
	"revft/internal/lattice"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "revft-circuits:", err)
		os.Exit(1)
	}
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("revft-circuits", flag.ContinueOnError)
	figName := fs.String("fig", "all", "figure to render")
	if err := fs.Parse(args); err != nil {
		return err
	}

	figs := []string{"1", "2", "4", "5", "6", "7", "adder", "cycle1d", "cycle2d"}
	if *figName != "all" {
		figs = strings.Split(*figName, ",")
	}
	for _, f := range figs {
		s, err := render(f)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, s)
	}
	return nil
}

func render(fig string) (string, error) {
	var b strings.Builder
	switch fig {
	case "1":
		fmt.Fprintln(&b, "Figure 1: the reversible MAJ gate from two CNOTs and one Toffoli")
		c := circuit.New(3).CNOT(0, 1).CNOT(0, 2).Toffoli(1, 2, 0)
		b.WriteString(c.Render())
		fmt.Fprintln(&b, "\nMAJ truth table (paper Table 1):")
		b.WriteString(gate.MAJ.FormatTruthTable())
	case "2":
		fmt.Fprintln(&b, "Figure 2: fault-tolerant error recovery for the 3-bit repetition code")
		c := core.Recovery()
		b.WriteString(c.RenderLabeled(core.RecoveryLabels()))
		fmt.Fprintf(&b, "\nops: %d (E = %d with init, %d without); G = 3+E ⇒ thresholds 1/165, 1/108\n",
			c.Len(), core.RecoveryOps, core.RecoveryOpsNoInit)
	case "4":
		fmt.Fprintln(&b, "Figure 4: the 2D patch — codeword down the middle column, ancillas flanking")
		fmt.Fprintln(&b, "    q8 q2 q5")
		fmt.Fprintln(&b, "    q7 q1 q4")
		fmt.Fprintln(&b, "    q6 q0 q3")
		fmt.Fprintln(&b, "\n2D recovery (identical ops to Figure 2; every gate a straight run on the patch):")
		b.WriteString(lattice.Recovery2D().Render())
		if err := lattice.CheckLocal(lattice.Recovery2D(), lattice.Patch2DLayout(), nil); err != nil {
			fmt.Fprintf(&b, "LOCALITY VIOLATION: %v\n", err)
		} else {
			fmt.Fprintln(&b, "locality: every op (including initializations) is nearest-neighbor — no SWAPs needed")
		}
	case "5":
		fmt.Fprintln(&b, "Figure 5: the SWAP3 gate — two SWAPs on three adjacent bits")
		c := circuit.New(3).Swap(0, 1).Swap(1, 2)
		b.WriteString(c.Render())
		fmt.Fprintln(&b, "\nas a single 3-bit gate:")
		b.WriteString(circuit.New(3).Swap3(0, 1, 2).Render())
	case "6":
		fmt.Fprintln(&b, "Figure 6: interleaving three linearly adjacent codewords (§3.2 schedule)")
		il := lattice.NewInterleave1D()
		c := circuit.New(lattice.Cycle1DWidth)
		for _, op := range il.Ops {
			c.Append(op.Kind, op.Targets...)
		}
		b.WriteString(c.Render())
		fmt.Fprintf(&b, "\nswaps: %d total (paper: 45); per-codeword maxima: %d swaps / %d SWAP3 (paper: 24 / 12)\n",
			len(il.Swaps), il.SwapsTouching(2), il.OpsTouching(2))
	case "7":
		fmt.Fprintln(&b, "Figure 7: fault-tolerant error recovery with only nearest-neighbor 1D operations")
		c := lattice.Recovery1D()
		b.WriteString(c.RenderLabeled(lattice.Recovery1DLabels()))
		fmt.Fprintf(&b, "\nops: %d with init, %d without (6 MAJ + 9 SWAPs as 4 SWAP3 + 1 SWAP + 2 INIT3)\n",
			lattice.Recovery1DOps, lattice.Recovery1DOpsNoInit)
	case "adder":
		fmt.Fprintln(&b, "Cuccaro ripple-carry adder (paper reference [4]), 3 bits:")
		c, _ := adder.New(3)
		b.WriteString(c.Render())
		fmt.Fprintf(&b, "\ngates: %d (n MAJ + 1 CNOT + 3n UMA primitives)\n", c.GateCount())
	case "cycle1d":
		fmt.Fprintln(&b, "Complete 1D logical MAJ cycle: interleave · transversal gate · uninterleave · recovery")
		cyc := lattice.NewCycle1D(gate.MAJ)
		fmt.Fprintf(&b, "ops: %d on %d cells, depth %d; per-codeword G (moving codeword): %d (paper: 40)\n",
			cyc.Circuit.Len(), cyc.Circuit.Width(), cyc.Circuit.Depth(), cyc.CountPerCodeword(2))
		audit := cyc.AuditSingleFaults()
		fmt.Fprintf(&b, "single-fault audit: %d/%d injections flip a logical output (all on data-data crossing swaps)\n",
			len(audit.Failures), audit.Cases)
	case "cycle2d":
		fmt.Fprintln(&b, "Complete 2D logical MAJ cycle: SWAP3 interleave · transversal gate · uninterleave · patch recovery")
		cyc := lattice.NewCycle2D(gate.MAJ)
		fmt.Fprintf(&b, "ops: %d on %d cells, depth %d; per-codeword G (moving codeword): %d (paper: 16)\n",
			cyc.Circuit.Len(), cyc.Circuit.Width(), cyc.Circuit.Depth(), cyc.CountPerCodeword(0))
		audit := cyc.AuditSingleFaults()
		fmt.Fprintf(&b, "single-fault audit: %d/%d injections flip a logical output\n",
			len(audit.Failures), audit.Cases)
	default:
		return "", fmt.Errorf("unknown figure %q", fig)
	}
	return b.String(), nil
}
