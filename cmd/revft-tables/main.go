// Command revft-tables regenerates every analytic table and figure-derived
// number of the paper — thresholds, blowups, hybrid thresholds, entropy
// bounds, circuit audits — pairing each published value with the value this
// library computes.
//
// Usage:
//
//	revft-tables [-exp all|table1|thresholds|table2|blowup|unprotected|entropy|audit|vonneumann|exact|nand|synthesis|pairs] [-csv] [-manifest]
//
// -manifest prints a one-line JSON run manifest (tool, git revision, Go
// version, platform) to stderr before the tables, so archived table output
// can be tied to the code revision that produced it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"revft/internal/exp"
	"revft/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "revft-tables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("revft-tables", flag.ContinueOnError)
	expName := fs.String("exp", "all", "experiment to regenerate")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	manifest := fs.Bool("manifest", false, "print a one-line JSON run manifest to stderr first")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *manifest {
		b, err := json.Marshal(telemetry.Collect("revft-tables"))
		if err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		fmt.Fprintln(os.Stderr, string(b))
	}

	tables, err := selectTables(*expName)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Format())
		}
	}
	return nil
}

func selectTables(name string) ([]*exp.Table, error) {
	switch name {
	case "all":
		return exp.AllAnalytic(), nil
	case "table1":
		return []*exp.Table{exp.Table1()}, nil
	case "thresholds":
		return []*exp.Table{exp.Thresholds()}, nil
	case "table2":
		return []*exp.Table{exp.Table2()}, nil
	case "blowup":
		return []*exp.Table{exp.Blowup()}, nil
	case "unprotected":
		return []*exp.Table{exp.Unprotected()}, nil
	case "entropy":
		return []*exp.Table{exp.EntropyBounds()}, nil
	case "audit":
		return []*exp.Table{exp.LocalCircuitAudit()}, nil
	case "vonneumann":
		return []*exp.Table{exp.VonNeumannBaseline()}, nil
	case "exact":
		return []*exp.Table{exp.ExactThresholds()}, nil
	case "nand":
		return []*exp.Table{exp.NANDSimulation()}, nil
	case "synthesis":
		return []*exp.Table{exp.SynthesisCosts()}, nil
	case "pairs":
		return []*exp.Table{exp.PairAnalysis()}, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}
