// Command revft-server runs the sweep job server: an HTTP service that
// accepts Monte Carlo sweep jobs for the paper's experiments (recovery,
// levels, local, adder), fans their points out to a bounded worker pool
// in seed-stable shards, and persists every job-state transition to a
// crash-safe journal so a killed server resumes exactly where it died.
//
// Usage:
//
//	revft-server -addr 127.0.0.1:8023 -data ./server-data
//
// Lifecycle:
//
//	curl -X POST :8023/jobs -d '{"experiment":"recovery","gmin":1e-3,...}'
//	curl :8023/jobs/<id>            # poll status
//	curl :8023/jobs/<id>/progress   # live trials/points done, per-shard
//	                                # wall-time histograms, Wilson
//	                                # half-width trajectory, ETA
//	curl :8023/jobs/<id>/metrics    # merged cross-shard telemetry snapshot
//	                                # (JSON; ?format=text for exposition)
//	curl :8023/jobs/<id>/result     # fetch result.json once done
//	curl -X DELETE :8023/jobs/<id>  # cancel
//
// Jobs carry a priority class (interactive, batch, or bulk, default
// batch): the shard scheduler serves classes by weighted round-robin
// (8/3/1), preempts running bulk shards at checkpoint boundaries when
// interactive work queues, and refuses or sheds — with typed 429s and
// Retry-After hints — jobs whose requested timeout the current queue
// makes unmeetable. -stall-budget arms the stuck-shard watchdog:
// attempts with no progress for that long are cancelled and retried
// from their checkpoint. GET /healthz reports the four-state health
// machine (healthy | degraded | draining | failed).
//
// -debug-addr serves /debug/pprof/ alongside /metrics and /debug/vars;
// shard workers run under pprof labels (job, tenant, shard), so a CPU
// profile of a busy server slices engine time per job.
//
// SIGINT/SIGTERM triggers a graceful drain: the server stops admitting,
// in-flight shards checkpoint at the next point boundary, traces flush,
// and the process exits 0. Restarting with the same -data replays the
// journal and resumes every interrupted job; the eventual results are
// bit-identical to an uninterrupted run.
//
// -chaos injects write faults into the checkpoint/result path (exactly
// like revft-mc -chaos); the journal always writes through the clean OS
// filesystem because journal appends are deliberately not retried — a
// torn retried line would read as mid-file corruption on replay.
//
// -cache points the server at a content-addressed result cache (default
// "auto" = <data>/cache; "off" disables). A resubmitted spec whose result
// is already stored is served at submission time — journaled
// submitted+done with a byte-identical result.json and zero Monte Carlo —
// and a spec whose ε-grid is a subset of a cached same-family entry
// grafts the cached points and computes only the remainder. Entries are
// hash-verified on read; a tampered or torn entry is a typed miss, never
// a wrong answer. Audit a cache offline with revft-verify -cache <dir>.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"revft/internal/chaos"
	"revft/internal/exp"
	"revft/internal/resultcache"
	"revft/internal/server"
	"revft/internal/sweep"
	"revft/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "revft-server:", err)
		os.Exit(1)
	}
}

// drivers adapts the shardable sweep experiments to the server's Driver
// contract. Engine validation happens here so a bad engine is a typed
// 400 rejection, not a shard failure at run time.
func drivers() map[string]server.Driver {
	mk := func(name string) server.Driver {
		return func(spec server.JobSpec, grid []float64) (sweep.PointFunc, int, error) {
			if !exp.ValidEngine(spec.Engine) {
				return nil, 0, fmt.Errorf("unknown engine %q (want scalar, lanes, lanes256, or lanes512)", spec.Engine)
			}
			p := exp.MCParams{Trials: spec.Trials, Workers: spec.Workers, Seed: spec.Seed, Engine: spec.Engine}
			return exp.ShardableSweep(name, grid, spec.MaxLevel, spec.Bits, p)
		}
	}
	out := make(map[string]server.Driver)
	for _, name := range []string{"recovery", "levels", "local", "adder"} {
		out[name] = mk(name)
	}
	return out
}

func run(args []string) error {
	fs := flag.NewFlagSet("revft-server", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8023", "listen address (port 0 picks a free port)")
		data         = fs.String("data", "revft-server-data", "durable data directory: job journal, shard checkpoints, traces, results")
		pool         = fs.Int("pool", 0, "shard worker pool size (0 = GOMAXPROCS)")
		maxActive    = fs.Int("max-active", 64, "bound on admitted-but-unfinished jobs across all tenants")
		tenantJobs   = fs.Int("tenant-jobs", 8, "per-tenant concurrent active job quota (0 = unlimited)")
		tenantTrials = fs.Int64("tenant-trials", 0, "per-tenant in-flight trial budget, points x trials summed over active jobs (0 = unlimited)")
		maxInter     = fs.Int("max-interactive", 0, "bound on active interactive-priority jobs (0 = only the global -max-active bound)")
		maxBatch     = fs.Int("max-batch", 0, "bound on active batch-priority jobs (0 = only the global -max-active bound)")
		maxBulk      = fs.Int("max-bulk", 0, "bound on active bulk-priority jobs (0 = only the global -max-active bound)")
		stallBudget  = fs.Duration("stall-budget", 2*time.Minute, "stuck-shard watchdog: cancel and retry a shard attempt with no progress for this long (0 disables)")
		degradedAt   = fs.Int("degraded-queue", 0, "queued-shard depth past which /healthz reports degraded (0 = 8 x pool size)")
		cacheDir     = fs.String("cache", "auto", `content-addressed result cache directory: "auto" = <data>/cache, "off" = disabled`)
		drainTimeout = fs.Duration("drain-timeout", time.Minute, "bound on the SIGTERM graceful drain")
		debugAddr    = fs.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof/ on this host:port while the server runs")
		chaosRate    = fs.Float64("chaos", 0, "fault-injection probability per checkpoint/result write operation, in [0,1)")
		chaosSeed    = fs.Uint64("chaos-seed", 1, "seed for the injected fault sequence")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaosRate < 0 || *chaosRate >= 1 {
		return fmt.Errorf("-chaos %v: need a probability in [0, 1)", *chaosRate)
	}

	fsys := chaos.FS(chaos.OS)
	if *chaosRate > 0 {
		fsys = &chaos.InjectFS{
			Hook: chaos.Prob(*chaosRate, *chaosSeed, chaos.WriteOps...),
			Torn: true,
		}
		log.Printf("chaos injection active: rate %g, seed %d (checkpoint/result writes only)", *chaosRate, *chaosSeed)
	}

	reg := telemetry.New()
	telemetry.SetDefault(reg)

	// The result cache writes through the same (possibly chaotic)
	// filesystem as checkpoints and results: entries are atomic and
	// hash-verified on read, so injected faults cost at most a miss.
	var cache *resultcache.Store
	switch *cacheDir {
	case "off":
	case "auto":
		cache = &resultcache.Store{Dir: filepath.Join(*data, "cache"), FS: fsys, Metrics: reg}
	default:
		cache = &resultcache.Store{Dir: *cacheDir, FS: fsys, Metrics: reg}
	}

	workers := *pool
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	srv, err := server.New(server.Config{
		DataDir:            *data,
		Drivers:            drivers(),
		PoolWorkers:        workers,
		MaxActiveJobs:      *maxActive,
		MaxJobsPerTenant:   *tenantJobs,
		MaxTrialsPerTenant: *tenantTrials,
		MaxActivePerClass: map[string]int{
			server.PriorityInteractive: *maxInter,
			server.PriorityBatch:       *maxBatch,
			server.PriorityBulk:        *maxBulk,
		},
		StallBudget:        *stallBudget,
		DegradedQueueDepth: *degradedAt,
		FS:                 fsys,
		JournalFS:          chaos.OS,
		Metrics:            reg,
		Cache:              cache,
		Logf:               log.Printf,
	})
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		d, derr := telemetry.ServeDebug(*debugAddr, reg)
		if derr != nil {
			_ = srv.Close()
			return fmt.Errorf("debug server: %w", derr)
		}
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer scancel()
			_ = d.Shutdown(sctx)
		}()
		log.Printf("debug server on http://%s (/metrics, /debug/vars, /debug/pprof/)", d.Addr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = srv.Close()
		return fmt.Errorf("listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("serving on http://%s (data dir %s, %d workers)", ln.Addr(), *data, workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("signal received; draining (bound %v)", *drainTimeout)
	case err := <-serveErr:
		_ = srv.Close()
		return fmt.Errorf("http server: %w", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	// Stop the listener and in-flight requests first, then park the jobs:
	// a request that lands mid-drain would only see typed 503s anyway.
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("drained cleanly; journal and checkpoints are resumable from %s", *data)
	return nil
}
