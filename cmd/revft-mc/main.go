// Command revft-mc runs the Monte Carlo experiments: logical error rates of
// the fault-tolerant constructions under the paper's noise model, measured
// ancilla entropy, the NAND-multiplexing baseline, and module-level
// comparisons.
//
// Usage:
//
//	revft-mc -exp recovery   [-gmin 1e-4 -gmax 3e-2 -points 7]
//	revft-mc -exp levels     [-maxlevel 2]
//	revft-mc -exp local
//	revft-mc -exp entropy
//	revft-mc -exp vonneumann
//	revft-mc -exp adder      [-bits 4]
//	revft-mc -exp initablation|correlated|interleave|memory|idle
//
// Common flags: -trials, -workers, -seed, -csv, -engine.
//
// -engine selects the Monte Carlo execution engine for the hot sweeps
// (recovery, levels, local, adder): "scalar" runs one trial at a time,
// "lanes" packs 64 bit-sliced trials per batch for roughly hardware-word
// speedup at identical statistics. Experiments without a lane path ignore
// the flag.
//
// The sweep experiments (recovery, levels, local, adder) also run on a
// resilient runtime with these flags:
//
//	-checkpoint ck.json   rewrite an atomic JSON checkpoint after every
//	                      completed sweep point
//	-resume               load -checkpoint and skip its completed points;
//	                      the checkpoint must come from an identical spec
//	                      (experiment, grid, trials, seed, engine, ...)
//	-timeout 10m          cancel the sweep after a wall-clock budget
//	-reltol 0.05          adaptive early stopping: per point, stop once every
//	                      estimate's 95% Wilson half-width is at most reltol
//	                      times its rate (floor 1000 trials, ceiling -trials)
//	-progress             print one line per completed point to stderr
//
// SIGINT/SIGTERM cancels the sweep cleanly: in-flight trials stop at the
// next batch boundary, the checkpoint is flushed, and the partial table is
// printed with a [PARTIAL] title tag. Rerunning with the same spec and
// -resume finishes the sweep; the final table is bit-identical to an
// uninterrupted run for a fixed (seed, workers, engine).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"revft/internal/exp"
	"revft/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "revft-mc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("revft-mc", flag.ContinueOnError)
	var (
		expName  = fs.String("exp", "recovery", "experiment: recovery|levels|local|entropy|vonneumann|adder|initablation|correlated|interleave|memory|idle")
		trials   = fs.Int("trials", 200000, "Monte Carlo trials per data point")
		workers  = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed     = fs.Uint64("seed", 1, "random seed")
		engine   = fs.String("engine", exp.EngineScalar, "execution engine: scalar|lanes")
		gmin     = fs.Float64("gmin", 1e-4, "smallest gate error rate in the sweep")
		gmax     = fs.Float64("gmax", 3e-2, "largest gate error rate in the sweep")
		points   = fs.Int("points", 7, "number of sweep points")
		maxLevel = fs.Int("maxlevel", 2, "deepest concatenation level (levels experiment)")
		bits     = fs.Int("bits", 4, "adder width (adder experiment)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")

		checkpoint = fs.String("checkpoint", "", "checkpoint file for the sweep experiments (rewritten after every completed point)")
		resume     = fs.Bool("resume", false, "resume from -checkpoint, skipping completed points")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget for the sweep experiments (0 = none)")
		reltol     = fs.Float64("reltol", 0, "adaptive early stopping: target relative 95% CI half-width per point (0 = fixed -trials)")
		progress   = fs.Bool("progress", false, "print per-point progress to stderr (sweep experiments)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *engine {
	case exp.EngineScalar, exp.EngineLanes:
	default:
		return fmt.Errorf("unknown engine %q (want scalar or lanes)", *engine)
	}
	p := exp.MCParams{Trials: *trials, Workers: *workers, Seed: *seed, Engine: *engine}
	gs := stats.LogSpace(*gmin, *gmax, *points)

	sweepExp := false
	switch *expName {
	case "recovery", "levels", "local", "adder":
		sweepExp = true
	}
	if !sweepExp {
		for name, set := range map[string]bool{
			"-checkpoint": *checkpoint != "",
			"-resume":     *resume,
			"-timeout":    *timeout != 0,
			"-reltol":     *reltol != 0,
			"-progress":   *progress,
		} {
			if set {
				return fmt.Errorf("%s only applies to the sweep experiments (recovery, levels, local, adder), not %q", name, *expName)
			}
		}
	}
	if *resume && *checkpoint == "" {
		return errors.New("-resume requires -checkpoint")
	}

	var t *exp.Table
	var sweepErr error
	if sweepExp {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		if *timeout > 0 {
			var tcancel context.CancelFunc
			ctx, tcancel = context.WithTimeout(ctx, *timeout)
			defer tcancel()
		}
		o := exp.SweepOptions{
			Checkpoint: *checkpoint,
			Resume:     *resume,
			RelTol:     *reltol,
		}
		if *progress {
			o.Progress = os.Stderr
		}
		switch *expName {
		case "recovery":
			t, sweepErr = exp.RecoveryCtx(ctx, gs, p, o)
		case "levels":
			t, sweepErr = exp.LevelsCtx(ctx, gs, *maxLevel, p, o)
		case "local":
			t, sweepErr = exp.LocalCtx(ctx, gs, p, o)
		case "adder":
			t, sweepErr = exp.AdderModuleCtx(ctx, *bits, gs, p, o)
		}
		if t == nil {
			return sweepErr
		}
	} else {
		switch *expName {
		case "entropy":
			t = exp.EntropyMeasured(gs, p)
		case "vonneumann":
			t = exp.VonNeumannChain(p)
		case "initablation":
			t = exp.InitAblation(gs, p)
		case "correlated":
			t = exp.CorrelatedNoise(*gmax, []float64{0, 0.25, 0.5, 0.75, 0.9}, p)
		case "interleave":
			t = exp.InterleaveAblation(gs, p)
		case "memory":
			t = exp.MemoryExperiment(*gmax, []int{1, 2, 5, 10, 20, 50}, p)
		case "idle":
			t = exp.IdleNoise(*gmax, []float64{0, 0.1, 0.5, 1, 2}, p)
		default:
			return fmt.Errorf("unknown experiment %q", *expName)
		}
	}

	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.Format())
	}
	if sweepErr != nil {
		if *checkpoint != "" {
			return fmt.Errorf("sweep interrupted (%w); completed points are checkpointed in %s — rerun with -resume to finish", sweepErr, *checkpoint)
		}
		return fmt.Errorf("sweep interrupted (%w); rerun with -checkpoint/-resume to make interruptions recoverable", sweepErr)
	}
	return nil
}
