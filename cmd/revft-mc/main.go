// Command revft-mc runs the Monte Carlo experiments: logical error rates of
// the fault-tolerant constructions under the paper's noise model, measured
// ancilla entropy, the NAND-multiplexing baseline, and module-level
// comparisons.
//
// Usage:
//
//	revft-mc -exp recovery   [-gmin 1e-4 -gmax 3e-2 -points 7]
//	revft-mc -exp levels     [-maxlevel 2]
//	revft-mc -exp local
//	revft-mc -exp entropy
//	revft-mc -exp vonneumann
//	revft-mc -exp adder      [-bits 4]
//	revft-mc -exp initablation|correlated|interleave|memory
//
// Common flags: -trials, -workers, -seed, -csv, -engine.
//
// -engine selects the Monte Carlo execution engine for the hot sweeps
// (recovery, levels, local, adder): "scalar" runs one trial at a time,
// "lanes" packs 64 bit-sliced trials per batch for roughly hardware-word
// speedup at identical statistics. Experiments without a lane path ignore
// the flag.
package main

import (
	"flag"
	"fmt"
	"os"

	"revft/internal/exp"
	"revft/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "revft-mc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("revft-mc", flag.ContinueOnError)
	var (
		expName  = fs.String("exp", "recovery", "experiment: recovery|levels|local|entropy|vonneumann|adder|initablation|correlated|interleave|memory|idle")
		trials   = fs.Int("trials", 200000, "Monte Carlo trials per data point")
		workers  = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed     = fs.Uint64("seed", 1, "random seed")
		engine   = fs.String("engine", exp.EngineScalar, "execution engine: scalar|lanes")
		gmin     = fs.Float64("gmin", 1e-4, "smallest gate error rate in the sweep")
		gmax     = fs.Float64("gmax", 3e-2, "largest gate error rate in the sweep")
		points   = fs.Int("points", 7, "number of sweep points")
		maxLevel = fs.Int("maxlevel", 2, "deepest concatenation level (levels experiment)")
		bits     = fs.Int("bits", 4, "adder width (adder experiment)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *engine {
	case exp.EngineScalar, exp.EngineLanes:
	default:
		return fmt.Errorf("unknown engine %q (want scalar or lanes)", *engine)
	}
	p := exp.MCParams{Trials: *trials, Workers: *workers, Seed: *seed, Engine: *engine}
	gs := stats.LogSpace(*gmin, *gmax, *points)

	var t *exp.Table
	switch *expName {
	case "recovery":
		t = exp.Recovery(gs, p)
	case "levels":
		t = exp.Levels(gs, *maxLevel, p)
	case "local":
		t = exp.Local(gs, p)
	case "entropy":
		t = exp.EntropyMeasured(gs, p)
	case "vonneumann":
		t = exp.VonNeumannChain(p)
	case "adder":
		t = exp.AdderModule(*bits, gs, p)
	case "initablation":
		t = exp.InitAblation(gs, p)
	case "correlated":
		t = exp.CorrelatedNoise(*gmax, []float64{0, 0.25, 0.5, 0.75, 0.9}, p)
	case "interleave":
		t = exp.InterleaveAblation(gs, p)
	case "memory":
		t = exp.MemoryExperiment(*gmax, []int{1, 2, 5, 10, 20, 50}, p)
	case "idle":
		t = exp.IdleNoise(*gmax, []float64{0, 0.1, 0.5, 1, 2}, p)
	default:
		return fmt.Errorf("unknown experiment %q", *expName)
	}

	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.Format())
	}
	return nil
}
