// Command revft-mc runs the Monte Carlo experiments: logical error rates of
// the fault-tolerant constructions under the paper's noise model, measured
// ancilla entropy, the NAND-multiplexing baseline, and module-level
// comparisons.
//
// Usage:
//
//	revft-mc -exp recovery   [-gmin 1e-4 -gmax 3e-2 -points 7]
//	revft-mc -exp levels     [-maxlevel 2]
//	revft-mc -exp local
//	revft-mc -exp entropy
//	revft-mc -exp vonneumann
//	revft-mc -exp adder      [-bits 4]
//	revft-mc -exp initablation|correlated|interleave|memory|idle
//
// Common flags: -trials, -workers, -seed, -csv, -engine.
//
// -engine selects the Monte Carlo execution engine for the hot sweeps
// (recovery, levels, local, adder): "scalar" runs one trial at a time,
// "lanes" packs 64 bit-sliced trials per batch for roughly hardware-word
// speedup at identical statistics, and "lanes256"/"lanes512" run 4- or
// 8-word lane blocks through the fused word-program compiler — adjacent
// CNOT/CNOT/Toffoli triples collapse into single MAJ/UMA kernels and
// fault points sharing a probability share one geometric sampler, giving
// a further per-trial speedup on top of the wider batches. Experiments
// without a lane path ignore the flag.
//
// The sweep experiments (recovery, levels, local, adder) also run on a
// resilient runtime with these flags:
//
//	-cache dir            content-addressed result cache: a sweep whose
//	                      exact spec was completed before (here or by the
//	                      job server) is served from the cache with zero
//	                      trials run; fresh completions are stored for
//	                      next time. Entries are hash-verified on read —
//	                      a tampered or torn entry is a miss, never a
//	                      wrong table (audit with revft-verify -cache)
//	-checkpoint ck.json   rewrite an atomic JSON checkpoint after every
//	                      completed sweep point
//	-resume               load -checkpoint and skip its completed points;
//	                      the checkpoint must come from an identical spec
//	                      (experiment, grid, trials, seed, engine, ...)
//	-timeout 10m          cancel the sweep after a wall-clock budget
//	-reltol 0.05          adaptive early stopping: per point, stop once every
//	                      estimate's 95% Wilson half-width is at most reltol
//	                      times its rate (floor 1000 trials, ceiling -trials)
//	-zeroscale 1e-6       with -reltol: let a point with zero observed
//	                      failures stop early once its 95% Wilson upper
//	                      bound drops below reltol times this rate scale
//	                      (without it, zero-success points always run to
//	                      the ceiling, since their relative width is
//	                      unbounded)
//	-progress             sweep experiments: one line per completed point;
//	                      other experiments: a heartbeat every 2s with
//	                      trials done, trials/sec, and ETA
//
// Observability flags (all experiments):
//
//	-debug-addr host:port serve /metrics (plain text), /debug/vars (expvar,
//	                      including the full registry snapshot under
//	                      "revft"), and /debug/pprof/ while the run is live
//	-trace run.jsonl      write a JSONL event stream: a manifest header
//	                      line (tool, git revision, engine, seed, Go
//	                      version, GOMAXPROCS, ...), one event per sweep
//	                      transition, and a final metrics snapshot
//
// Chaos injection (testing the runtime itself):
//
//	-chaos 0.05           fail each checkpoint/trace write operation
//	                      independently with this probability (torn
//	                      writes included). The Monte Carlo results are
//	                      unaffected: checkpoint writes retry with
//	                      backoff and keep the old-or-new guarantee,
//	                      trace writes degrade to counted drops. The
//	                      active chaos configuration is recorded in the
//	                      run manifest so chaotic artifacts are
//	                      self-identifying.
//	-chaos-seed 1         seed for the fault sequence (reproducible runs)
//
// SIGINT/SIGTERM cancels the sweep cleanly: in-flight trials stop at the
// next batch boundary, the checkpoint is flushed, and the partial table is
// printed with a [PARTIAL] title tag. Rerunning with the same spec and
// -resume finishes the sweep; the final table is bit-identical to an
// uninterrupted run for a fixed (seed, workers, engine).
//
// Exit codes:
//
//	0  the run completed
//	3  the run was interrupted (SIGINT/SIGTERM or -timeout) and printed
//	   a [PARTIAL] table; the checkpoint, if any, is resumable
//	1  anything else (usage errors, I/O failures, trial panics)
//
// Scripts can therefore distinguish "partial but resumable" from real
// failures without parsing stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"revft/internal/chaos"
	"revft/internal/client"
	"revft/internal/exp"
	"revft/internal/resultcache"
	"revft/internal/server"
	"revft/internal/stats"
	"revft/internal/telemetry"
)

// exitPartial is the documented exit code for a run interrupted by a
// signal or -timeout after printing a [PARTIAL] table.
const exitPartial = 3

func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "revft-mc:", err)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// A cancelled or timed-out sweep is not a failure of the tool: the
		// partial table was printed and the checkpoint flushed. Give
		// scripts a distinct code so they can resume instead of aborting.
		os.Exit(exitPartial)
	}
	os.Exit(1)
}

func run(args []string) error {
	fs := flag.NewFlagSet("revft-mc", flag.ContinueOnError)
	var (
		expName  = fs.String("exp", "recovery", "experiment: recovery|levels|local|entropy|vonneumann|adder|initablation|correlated|interleave|memory|idle")
		trials   = fs.Int("trials", 200000, "Monte Carlo trials per data point")
		workers  = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed     = fs.Uint64("seed", 1, "random seed")
		engine   = fs.String("engine", exp.EngineScalar, "execution engine: scalar|lanes|lanes256|lanes512")
		gmin     = fs.Float64("gmin", 1e-4, "smallest gate error rate in the sweep")
		gmax     = fs.Float64("gmax", 3e-2, "largest gate error rate in the sweep")
		points   = fs.Int("points", 7, "number of sweep points")
		maxLevel = fs.Int("maxlevel", 2, "deepest concatenation level (levels experiment)")
		bits     = fs.Int("bits", 4, "adder width (adder experiment)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")

		serverURL = fs.String("server", "", "submit the sweep to a running revft-server at this base URL (e.g. http://127.0.0.1:8080) instead of computing locally; sweep experiments only")
		priority  = fs.String("priority", "", "with -server: job priority class interactive|batch|bulk (default batch)")
		shards    = fs.Int("shards", 0, "with -server: seed-stable point shards to fan the job out as (0 = server default)")
		tenant    = fs.String("tenant", "", "with -server: tenant name for quota accounting (default \"default\")")

		cacheDir   = fs.String("cache", "", "content-addressed result cache directory for the sweep experiments: serve an already-computed sweep from the cache and store fresh completions into it")
		checkpoint = fs.String("checkpoint", "", "checkpoint file for the sweep experiments (rewritten after every completed point)")
		resume     = fs.Bool("resume", false, "resume from -checkpoint, skipping completed points")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget for the sweep experiments (0 = none)")
		reltol     = fs.Float64("reltol", 0, "adaptive early stopping: target relative 95% CI half-width per point (0 = fixed -trials)")
		zeroscale  = fs.Float64("zeroscale", 0, "with -reltol: let zero-success points stop once their 95% CI upper bound is below reltol times this rate scale (0 = run such points to the ceiling)")
		progress   = fs.Bool("progress", false, "print progress to stderr: per-point lines for sweep experiments, a trials/sec heartbeat otherwise")
		debugAddr  = fs.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof/ on this host:port while the run is live")
		traceFile  = fs.String("trace", "", "write a JSONL event trace (manifest header, sweep events, final metrics snapshot) to this file")
		chaosRate  = fs.Float64("chaos", 0, "fault-injection probability per checkpoint/trace write operation, in [0,1) (0 = off); results are unaffected, only the I/O resilience machinery is exercised")
		chaosSeed  = fs.Uint64("chaos-seed", 1, "seed for the injected fault sequence")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if !exp.ValidEngine(*engine) {
		return fmt.Errorf("unknown engine %q (want scalar, lanes, lanes256, or lanes512)", *engine)
	}
	// Validate everything flag-reachable here so bad values come back as
	// usage errors, never as library panics.
	switch {
	case *trials < 1:
		return fmt.Errorf("-trials %d: need at least 1", *trials)
	case *workers < 0:
		return fmt.Errorf("-workers %d: need 0 (= GOMAXPROCS) or more", *workers)
	case *gmin <= 0 || *gmax <= 0:
		return fmt.Errorf("-gmin %v, -gmax %v: gate error rates must be positive", *gmin, *gmax)
	case *gmax > 1:
		return fmt.Errorf("-gmax %v: gate error rate cannot exceed 1", *gmax)
	case *gmin > *gmax:
		return fmt.Errorf("-gmin %v exceeds -gmax %v", *gmin, *gmax)
	case *points < 1:
		return fmt.Errorf("-points %d: need at least 1", *points)
	case *points == 1 && *gmin != *gmax:
		return fmt.Errorf("-points 1 needs -gmin == -gmax (got %v, %v)", *gmin, *gmax)
	case *maxLevel < 0:
		return fmt.Errorf("-maxlevel %d: need 0 or more", *maxLevel)
	case *bits < 1 || 2*(*bits)+2 > 64:
		return fmt.Errorf("-bits %d: adder needs 1..31 (state width 2n+2 must fit in 64)", *bits)
	case *reltol < 0:
		return fmt.Errorf("-reltol %v: need 0 (off) or positive", *reltol)
	case *zeroscale < 0:
		return fmt.Errorf("-zeroscale %v: need 0 (off) or positive", *zeroscale)
	case *chaosRate < 0 || *chaosRate >= 1:
		return fmt.Errorf("-chaos %v: need a probability in [0, 1)", *chaosRate)
	}
	if *zeroscale > 0 && *reltol == 0 {
		return errors.New("-zeroscale requires -reltol")
	}
	p := exp.MCParams{Trials: *trials, Workers: *workers, Seed: *seed, Engine: *engine}
	gs := stats.LogSpace(*gmin, *gmax, *points)

	sweepExp := false
	switch *expName {
	case "recovery", "levels", "local", "adder":
		sweepExp = true
	}
	if !sweepExp {
		for name, set := range map[string]bool{
			"-cache":      *cacheDir != "",
			"-checkpoint": *checkpoint != "",
			"-resume":     *resume,
			"-timeout":    *timeout != 0,
			"-reltol":     *reltol != 0,
			"-zeroscale":  *zeroscale != 0,
		} {
			if set {
				return fmt.Errorf("%s only applies to the sweep experiments (recovery, levels, local, adder), not %q", name, *expName)
			}
		}
	}
	if *resume && *checkpoint == "" {
		return errors.New("-resume requires -checkpoint")
	}
	if *serverURL == "" {
		for name, set := range map[string]bool{
			"-priority": *priority != "",
			"-shards":   *shards != 0,
			"-tenant":   *tenant != "",
		} {
			if set {
				return fmt.Errorf("%s requires -server (remote mode)", name)
			}
		}
	} else {
		if !sweepExp {
			return fmt.Errorf("-server only applies to the sweep experiments (recovery, levels, local, adder), not %q", *expName)
		}
		// The local runtime flags make no sense against a remote server,
		// which has its own checkpoints, cache, chaos seams, and traces.
		for name, set := range map[string]bool{
			"-cache":      *cacheDir != "",
			"-checkpoint": *checkpoint != "",
			"-resume":     *resume,
			"-chaos":      *chaosRate != 0,
			"-debug-addr": *debugAddr != "",
			"-trace":      *traceFile != "",
		} {
			if set {
				return fmt.Errorf("%s is a local-run flag; it does not apply with -server", name)
			}
		}
		if *shards < 0 {
			return fmt.Errorf("-shards %d: need 0 (server default) or more", *shards)
		}
		spec := server.JobSpec{
			Tenant:     *tenant,
			Experiment: *expName,
			GMin:       *gmin, GMax: *gmax, Points: *points,
			Trials: *trials, Seed: *seed, Engine: *engine,
			MaxLevel: *maxLevel, Bits: *bits,
			Shards: *shards, Workers: *workers,
			RelTol: *reltol, ZeroScale: *zeroscale,
			TimeoutSeconds: timeout.Seconds(),
			Priority:       *priority,
		}
		return runRemote(*serverURL, spec, *csv, *progress)
	}

	// Chaos: a positive rate swaps the runtime filesystem under the
	// checkpoint and trace writers for one that fails each write-side
	// operation with that probability (including torn writes). Read
	// operations stay clean so a resume can always load what survived.
	fsys := chaos.OS
	if *chaosRate > 0 {
		fsys = &chaos.InjectFS{
			Hook: chaos.Prob(*chaosRate, *chaosSeed, chaos.WriteOps...),
			Torn: true,
		}
		fmt.Fprintf(os.Stderr, "revft-mc: chaos injection active: rate %g, seed %d (checkpoint/trace writes only)\n", *chaosRate, *chaosSeed)
	}

	// Telemetry: any observability flag builds a registry and installs it
	// process-wide, so even the context-free engines (entropy, vonneumann,
	// the ablations) report trial counts into it.
	var (
		reg *telemetry.Registry
		man *telemetry.Manifest
		tr  *telemetry.Trace
		ft  *telemetry.FileTrace
	)
	if *debugAddr != "" || *traceFile != "" || *progress {
		reg = telemetry.New()
		telemetry.SetDefault(reg)
		man = telemetry.Collect("revft-mc")
		man.Experiment = *expName
		man.Engine = *engine
		man.Seed = *seed
		man.Trials = *trials
		man.Workers = *workers
		if *chaosRate > 0 {
			spec := &telemetry.ChaosSpec{Rate: *chaosRate, Seed: *chaosSeed}
			for _, op := range chaos.WriteOps {
				spec.Ops = append(spec.Ops, op.String())
			}
			man.Chaos = spec
		}
		if *cacheDir != "" {
			man.Cache = &telemetry.CacheSpec{Dir: *cacheDir}
		}
		if n := expectedTrials(*expName, *trials, *points, *maxLevel); n > 0 {
			reg.Gauge(telemetry.ExpectedTrialsMetric).Set(float64(n))
		}
	}
	if *debugAddr != "" {
		d, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer func() {
			// Graceful teardown: let an in-flight /metrics scrape or
			// pprof profile finish, then make sure the serve goroutine
			// is gone before the process reports success.
			sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer scancel()
			_ = d.Shutdown(sctx)
		}()
		fmt.Fprintf(os.Stderr, "revft-mc: debug server on http://%s (/metrics, /debug/vars, /debug/pprof/)\n", d.Addr)
	}
	if *traceFile != "" {
		var err error
		ft, err = telemetry.NewTraceFile(*traceFile, man, telemetry.FileTraceOptions{
			FS: fsys, Metrics: reg, Warn: os.Stderr,
		})
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		tr = ft.Trace
	}

	var t *exp.Table
	var sweepErr error
	if sweepExp {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		if *timeout > 0 {
			var tcancel context.CancelFunc
			ctx, tcancel = context.WithTimeout(ctx, *timeout)
			defer tcancel()
		}
		var cache *resultcache.Store
		if *cacheDir != "" {
			// The cache shares the run's (possibly chaotic) filesystem:
			// entries are atomic and hash-verified on read, so injected
			// faults cost at most a miss, never a wrong table.
			cache = &resultcache.Store{Dir: *cacheDir, FS: fsys, Metrics: reg, Trace: tr}
		}
		o := exp.SweepOptions{
			Cache:      cache,
			Checkpoint: *checkpoint,
			Resume:     *resume,
			RelTol:     *reltol,
			ZeroScale:  *zeroscale,
			Metrics:    reg,
			Trace:      tr,
			Manifest:   man,
			FS:         fsys,
			// Root the trace's span tree at the run so CLI traces carry
			// the same run/<exp> → point causality the job server's
			// request → job → shard → point chain does.
			Span: telemetry.Root("run/" + *expName),
		}
		if *progress {
			o.Progress = os.Stderr
		}
		switch *expName {
		case "recovery":
			t, sweepErr = exp.RecoveryCtx(ctx, gs, p, o)
		case "levels":
			t, sweepErr = exp.LevelsCtx(ctx, gs, *maxLevel, p, o)
		case "local":
			t, sweepErr = exp.LocalCtx(ctx, gs, p, o)
		case "adder":
			t, sweepErr = exp.AdderModuleCtx(ctx, *bits, gs, p, o)
		}
		if t == nil {
			return sweepErr
		}
	} else {
		// Single-point runs get the registry-sourced heartbeat; sweep runs
		// already print per-point lines.
		var stopHeartbeat func()
		if *progress {
			stopHeartbeat = telemetry.StartHeartbeat(os.Stderr, reg, 2*time.Second)
		}
		switch *expName {
		case "entropy":
			t = exp.EntropyMeasured(gs, p)
		case "vonneumann":
			t = exp.VonNeumannChain(p)
		case "initablation":
			t = exp.InitAblation(gs, p)
		case "correlated":
			t = exp.CorrelatedNoise(*gmax, []float64{0, 0.25, 0.5, 0.75, 0.9}, p)
		case "interleave":
			t = exp.InterleaveAblation(gs, p)
		case "memory":
			t = exp.MemoryExperiment(*gmax, []int{1, 2, 5, 10, 20, 50}, p)
		case "idle":
			t = exp.IdleNoise(*gmax, []float64{0, 0.1, 0.5, 1, 2}, p)
		default:
			if stopHeartbeat != nil {
				stopHeartbeat()
			}
			return fmt.Errorf("unknown experiment %q", *expName)
		}
		if stopHeartbeat != nil {
			stopHeartbeat()
		}
	}

	if ft != nil {
		ft.EmitSnapshot(reg)
		ft.Emit("run_done", map[string]any{"ok": sweepErr == nil})
		if err := ft.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "revft-mc: trace %s: %v\n", *traceFile, err)
		}
		if err := ft.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "revft-mc: close trace %s: %v\n", *traceFile, err)
		}
		if ft.Degraded() {
			fmt.Fprintf(os.Stderr, "revft-mc: trace %s degraded; %d events counted in trace.events_dropped instead of written\n", *traceFile, ft.Dropped())
		}
	}

	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.Format())
	}
	if sweepErr != nil {
		if *checkpoint != "" {
			return fmt.Errorf("sweep interrupted (%w); completed points are checkpointed in %s — rerun with -resume to finish", sweepErr, *checkpoint)
		}
		return fmt.Errorf("sweep interrupted (%w); rerun with -checkpoint/-resume to make interruptions recoverable", sweepErr)
	}
	return nil
}

// runRemote submits the sweep to a revft-server through the idempotent
// retrying client and renders the returned result.json as a table. The
// submission is keyed by spec digest: rerunning the same command after a
// crash (of this process or the server) adopts the original job instead
// of duplicating it, and a server-side cache hit returns instantly.
func runRemote(baseURL string, spec server.JobSpec, csv, progress bool) error {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	c := &client.Client{BaseURL: baseURL}
	if progress {
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "revft-mc: "+format+"\n", args...)
		}
	}
	st, data, err := c.Run(ctx, spec)
	if err != nil {
		var jf *client.JobFailedError
		if errors.As(err, &jf) {
			return fmt.Errorf("remote job %s ended %s: %s", jf.Status.ID, jf.Status.State, jf.Status.Error)
		}
		return fmt.Errorf("remote run: %w", err)
	}
	t, err := remoteTable(baseURL, st, data)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.Format())
	}
	return nil
}

// remoteTable renders a server result.json generically: one row per
// result point with each estimate's rate, 95% Wilson CI, and trial
// count. The canonical machine-readable artifact stays the result.json
// itself (GET /jobs/{id}/result), keyed by spec digest.
func remoteTable(baseURL string, st server.JobStatus, data []byte) (*exp.Table, error) {
	var res server.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("decode remote result: %w", err)
	}
	if len(res.Grid) == 0 || len(res.Points) == 0 {
		return nil, errors.New("remote result is empty")
	}
	blocks := len(res.Points) / len(res.Grid)
	nEst := len(res.Points[0].Ests)
	t := &exp.Table{
		ID:    "remote",
		Title: fmt.Sprintf("%s sweep via %s", res.Experiment, baseURL),
	}
	if blocks > 1 {
		t.Header = append(t.Header, "block")
	}
	t.Header = append(t.Header, "eps")
	for i := 0; i < nEst; i++ {
		t.Header = append(t.Header,
			fmt.Sprintf("rate%d", i), fmt.Sprintf("ci95lo%d", i), fmt.Sprintf("ci95hi%d", i), fmt.Sprintf("trials%d", i))
	}
	for _, p := range res.Points {
		var cells []any
		if blocks > 1 {
			cells = append(cells, p.Index/len(res.Grid))
		}
		cells = append(cells, res.Grid[p.Index%len(res.Grid)])
		for _, e := range p.Ests {
			lo, hi := e.Wilson(1.96)
			cells = append(cells, e.Rate(), lo, hi, e.Trials)
		}
		t.AddRow(cells...)
	}
	t.AddNote("job %s (tenant %s, priority %s); spec digest %.16s…", st.ID, st.Tenant, st.Priority, st.SpecDigest)
	if st.Cache != "" {
		t.AddNote("server cache: %s (%d reused points)", st.Cache, st.ReusedPoints)
	}
	return t, nil
}

// expectedTrials returns the run's total trial budget for the heartbeat's
// ETA — an upper bound under adaptive early stopping — or 0 for the
// experiments whose budgets aren't a simple points × trials product.
func expectedTrials(expName string, trials, points, maxLevel int) int {
	switch expName {
	case "recovery", "entropy":
		return points * trials
	case "levels":
		return (maxLevel + 1) * points * trials
	case "local", "adder":
		// Two estimates per point, back to back.
		return 2 * points * trials
	case "vonneumann":
		chainTrials := trials / 100
		if chainTrials < 50 {
			chainTrials = 50
		}
		// Six eps values, two chain depths each.
		return 6 * 2 * chainTrials
	}
	return 0
}
