// Command revft-verify runs the reproduction's exhaustive, deterministic
// verification suite — the checks that hold with certainty rather than
// statistically — and prints a PASS/FAIL report:
//
//   - Table 1 and the Figure 1 decomposition, with BFS optimality;
//   - exhaustive single-fault tolerance of the Figure 2 recovery, the
//     Figure 7 1D recovery, the complete level-1 logical gate, and
//     multi-cycle storage;
//   - locality of every near-neighbor circuit, and the exact schedule
//     counts of §3.1–3.2;
//   - the fault audits of the three local cycles (perpendicular 2D clean;
//     parallel 2D and 1D failing only on data-crossing routing ops);
//   - footnote 4's entropy values (3/2 bits via MAJ⁻¹, 2 bits via Toffoli).
//
// Two flags extend the suite beyond the seed checks:
//
//	-exact         add the fault-enumeration oracle checks: full enumeration
//	               of the Figure 2 recovery (A₀ = A₁ = 0 proven over all
//	               2·9⁸ fault patterns, A₂ pinned to the exact rational
//	               71/32), the level-1 gadget's A₂ against the independent
//	               pair enumeration and against Eq. 1's 3·C(G,2) bound, and
//	               a closed-form NOT-chain cross-check
//	-differential  run the Monte Carlo engines (scalar, 64-lane, and the
//	               fused 256-lane wide engine) against the oracle's exact
//	               P(ε) on the recovery and the level-1 MAJ gadget, failing
//	               if any estimate's 3σ Wilson interval misses the exact
//	               value; -trials, -workers, and -seed control the runs
//	-trace f.jsonl write a JSONL event stream: a manifest header, one event
//	               per check, one per (ε, engine) differential verdict, and
//	               a closing summary
//
// A third mode audits a result cache instead of running the suite:
//
//	-cache dir     re-hash every entry of the content-addressed result
//	               cache at dir (as written by revft-server and revft-mc
//	               -cache) and print a PASS/FAIL line per entry; tampered,
//	               truncated, or misfiled entries are reported with their
//	               recorded and recomputed digests
//
// Exit status is nonzero if any check fails or any cache entry is corrupt.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/big"
	"os"

	"revft/internal/bitvec"
	"revft/internal/circuit"
	"revft/internal/code"
	"revft/internal/cooling"
	"revft/internal/core"
	"revft/internal/exact"
	"revft/internal/exp"
	"revft/internal/gate"
	"revft/internal/irrev"
	"revft/internal/lattice"
	"revft/internal/noise"
	"revft/internal/resultcache"
	"revft/internal/sim"
	"revft/internal/synth"
	"revft/internal/telemetry"
	"revft/internal/threshold"
)

type check struct {
	name string
	run  func() error
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "revft-verify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("revft-verify", flag.ContinueOnError)
	var (
		exactMode    = fs.Bool("exact", false, "add the exhaustive fault-enumeration oracle checks")
		differential = fs.Bool("differential", false, "verify the Monte Carlo engines (scalar, lanes, lanes256) against the exact oracle (3σ Wilson)")
		trials       = fs.Int("trials", 200000, "Monte Carlo trials per (ε, engine) differential point")
		workers      = fs.Int("workers", 0, "parallel workers for the differential runs (0 = GOMAXPROCS)")
		seed         = fs.Uint64("seed", 7, "base random seed for the differential runs")
		traceFile    = fs.String("trace", "", "write a JSONL event trace (manifest, per-check and per-verdict events) to this file")
		cacheAudit   = fs.String("cache", "", "audit the content-addressed result cache at this directory (re-hash every entry) instead of running the verification suite")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trials < 1 {
		return fmt.Errorf("-trials %d: need at least 1", *trials)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d: need 0 (= GOMAXPROCS) or more", *workers)
	}

	var tr *telemetry.Trace
	var ft *telemetry.FileTrace
	if *traceFile != "" {
		man := telemetry.Collect("revft-verify")
		man.Seed = *seed
		man.Trials = *trials
		man.Workers = *workers
		var err error
		// The crash-safe trace writer: a failing disk degrades the trace
		// to counted drops instead of failing the verification run.
		ft, err = telemetry.NewTraceFile(*traceFile, man, telemetry.FileTraceOptions{Warn: os.Stderr})
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer func() {
			if cerr := ft.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "revft-verify: close trace %s: %v\n", *traceFile, cerr)
			}
		}()
		tr = ft.Trace
	}

	if *cacheAudit != "" {
		return auditCache(*cacheAudit, tr)
	}

	cs := checks()
	if *exactMode {
		cs = append(cs, exactChecks()...)
	}
	failed := 0
	for _, c := range cs {
		err := c.run()
		if tr != nil {
			fields := map[string]any{"name": c.name, "ok": err == nil}
			if err != nil {
				fields["error"] = err.Error()
			}
			tr.Emit("check", fields)
		}
		if err != nil {
			fmt.Printf("FAIL  %-58s %v\n", c.name, err)
			failed++
		} else {
			fmt.Printf("PASS  %s\n", c.name)
		}
	}
	if *differential {
		bad, err := runDifferential(exp.MCParams{Trials: *trials, Workers: *workers, Seed: *seed}, tr)
		if err != nil {
			return err
		}
		failed += bad
	}
	if tr != nil {
		tr.Emit("run_done", map[string]any{"ok": failed == 0, "failed": failed})
		if err := tr.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "revft-verify: trace %s: %v\n", *traceFile, err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d check(s) failed", failed)
	}
	fmt.Println("\nall checks passed")
	return nil
}

// auditCache re-hashes every entry of the result cache at dir and prints
// one PASS/FAIL line per entry — the offline counterpart of the server's
// per-read verification. The walk itself failing (unreadable directory)
// is an error; corrupt entries are reported and counted, and any makes
// the exit status nonzero.
func auditCache(dir string, tr *telemetry.Trace) error {
	rep, err := (&resultcache.Store{Dir: dir}).Audit()
	if err != nil {
		return fmt.Errorf("cache audit: %w", err)
	}
	for _, e := range rep.Entries {
		if tr != nil {
			fields := map[string]any{"path": e.Path, "digest": e.SpecDigest, "ok": e.OK}
			if !e.OK {
				fields["reason"] = e.Reason
				fields["error"] = e.Error
			}
			tr.Emit("cache_entry", fields)
		}
		if e.OK {
			fmt.Printf("PASS  cache entry %.12s  %s (%d bytes)\n", e.SpecDigest, e.Experiment, e.Size)
		} else {
			fmt.Printf("FAIL  cache entry %.12s  [%s] %v\n", e.SpecDigest, e.Reason, e.Error)
		}
	}
	if tr != nil {
		tr.Emit("run_done", map[string]any{"ok": rep.Corrupt == 0, "entries": len(rep.Entries), "corrupt": rep.Corrupt})
	}
	if rep.Corrupt > 0 {
		return fmt.Errorf("cache %s: %d of %d entries corrupt", dir, rep.Corrupt, rep.OK+rep.Corrupt)
	}
	fmt.Printf("\ncache %s: all %d entries verified\n", dir, rep.OK)
	return nil
}

// exactChecks are the fault-enumeration oracle checks behind -exact: the
// deterministic, exhaustive claims about the fault polynomial itself.
func exactChecks() []check {
	return []check{
		{"Oracle: recovery full enumeration — A₁ = 0, A₂ = 71/32 exactly", checkOracleRecovery},
		{"Oracle: gadget A₂ matches pair enumeration, ≤ 3·C(G,2)", checkOracleGadget},
		{"Oracle: NOT-chain matches closed form (1−(1−ε)^N)/2", checkOracleNOTChain},
	}
}

// checkOracleRecovery runs the full 2·9⁸-leaf enumeration of the Figure 2
// recovery: every fault pattern of every weight, exactly once. A₀ = A₁ = 0
// is the exhaustive single-fault-tolerance proof; A₂ is pinned to the exact
// rational the oracle extracts, and stays under Eq. 1's all-pairs bound.
func checkOracleRecovery() error {
	p, err := exact.Enumerate(exact.Recovery(), exact.Options{})
	if err != nil {
		return err
	}
	if !p.SingleFaultTolerant() {
		return fmt.Errorf("%d zero-fault and %d single-fault failure patterns",
			p.FailurePatterns(0), p.FailurePatterns(1))
	}
	if got, want := p.Coeff(2), big.NewRat(71, 32); got.Cmp(want) != 0 {
		return fmt.Errorf("A₂ = %v, want %v", got, want)
	}
	if bound := 3 * threshold.Choose(core.RecoveryOps, 2); p.CoeffFloat(2) > bound {
		return fmt.Errorf("A₂ = %v exceeds 3·C(%d,2) = %v", p.CoeffFloat(2), core.RecoveryOps, bound)
	}
	return nil
}

// checkOracleGadget cross-validates the oracle's weight-2 coefficient of
// the complete level-1 MAJ gadget against core.QuadraticCoefficient — an
// independent pair-enumeration that shares no code with the oracle's DFS —
// and against the paper's 3·C(G,2) relaxation.
func checkOracleGadget() error {
	g := core.NewGadget(gate.MAJ, 1)
	p, err := exact.Enumerate(exact.Gadget(g), exact.Options{MaxWeight: 2})
	if err != nil {
		return err
	}
	if !p.SingleFaultTolerant() {
		return fmt.Errorf("%d zero-fault and %d single-fault failure patterns",
			p.FailurePatterns(0), p.FailurePatterns(1))
	}
	c2 := g.QuadraticCoefficient()
	if got := p.CoeffFloat(2); math.Abs(got-c2) > 1e-9 {
		return fmt.Errorf("oracle A₂ = %v, pair enumeration c₂ = %v", got, c2)
	}
	if bound := 3 * threshold.Choose(threshold.GNonLocalInit, 2); p.CoeffFloat(2) > bound {
		return fmt.Errorf("A₂ = %v exceeds 3·C(G,2) = %v", p.CoeffFloat(2), bound)
	}
	return nil
}

// checkOracleNOTChain pins the oracle against a closed form derivable by
// hand: in a chain of N NOTs on one wire only the last fault survives, and
// it is wrong with probability 1/2, so P(ε) = (1 − (1−ε)^N)/2.
func checkOracleNOTChain() error {
	const n = 6
	c := circuit.New(1)
	for i := 0; i < n; i++ {
		c.NOT(0)
	}
	p, err := exact.Enumerate(exact.Plain("not-chain", c), exact.Options{})
	if err != nil {
		return err
	}
	for _, eps := range []float64{0, 1e-3, 0.1, 0.5, 1} {
		want := (1 - math.Pow(1-eps, n)) / 2
		if got := p.Eval(eps); math.Abs(got-want) > 1e-12 {
			return fmt.Errorf("P(%v) = %v, want %v", eps, got, want)
		}
	}
	return nil
}

// runDifferential checks the three Monte Carlo engines — scalar, 64-lane,
// and the fused 4-word (256-lane) wide engine — against the oracle on two
// targets: the recovery with its fully enumerated polynomial, and the
// level-1 MAJ gadget with a weight-3 truncation whose tail bound widens
// the acceptance interval. It prints the verdict tables and returns the
// number of (ε, engine) disagreements.
func runDifferential(p exp.MCParams, tr *telemetry.Trace) (int, error) {
	fmt.Println()
	bad := 0
	runs := []struct {
		target exact.Target
		opts   exact.Options
		eps    []float64
	}{
		{exact.Recovery(), exact.Options{}, []float64{1e-3, 1e-2, 5e-2, 0.2}},
		{exact.Gadget(core.NewGadget(gate.MAJ, 1)), exact.Options{MaxWeight: 3}, []float64{1e-3, 3e-3, 1e-2}},
	}
	for i, r := range runs {
		poly, err := exact.Enumerate(r.target, r.opts)
		if err != nil {
			return bad, fmt.Errorf("%s: %w", r.target.Name, err)
		}
		pts, err := exp.Differential(context.Background(), r.target, poly, r.eps,
			exp.MCParams{Trials: p.Trials, Workers: p.Workers, Seed: p.Seed + uint64(1000*i)}, 4, tr)
		if err != nil {
			return bad, fmt.Errorf("%s: %w", r.target.Name, err)
		}
		tab, n := exp.DifferentialTable(r.target, poly, pts)
		fmt.Println(tab.Format())
		bad += n
	}
	return bad, nil
}

func checks() []check {
	return []check{
		{"Table 1: MAJ truth table matches the paper", checkTable1},
		{"Figure 1: decomposition equivalent and BFS-optimal (3 gates)", checkFigure1},
		{"Figure 2: recovery single-fault tolerant (exhaustive)", checkRecoveryFT},
		{"Figure 2: recovery corrects any single input error", checkRecoveryCorrects},
		{"Figure 3: level-1 logical gate single-fault tolerant (exhaustive)", checkLevel1FT},
		{"Figure 3: emitted gate counts equal Γ_L", checkBlowup},
		{"Storage: 3 recovery cycles single-fault tolerant (exhaustive)", checkMemoryFT},
		{"Figure 4: 2D recovery fully local on the patch", checkRecovery2DLocal},
		{"Figure 7: 1D recovery local, 13 ops, 9 SWAPs", checkRecovery1D},
		{"Figure 7: 1D recovery single-fault tolerant (exhaustive)", checkRecovery1DFT},
		{"§3.2: interleave schedule counts (45/24/12, movers 8+7+6, 10+8+6)", checkInterleaveCounts},
		{"§3: cycle audits — perpendicular 2D clean; 1D and parallel 2D fail only on crossings", checkCycleAudits},
		{"§3: per-codeword G = 40 for the 1D moving codeword", checkG40},
		{"Thresholds: all six published ρ values", checkThresholds},
		{"Table 2: hybrid ratios to two decimals", checkTable2},
		{"§2.3: worked example (L = 2, 441, 81)", checkWorkedExample},
		{"§4: footnote 4 — NAND at 3/2 bits via MAJ⁻¹, 2 bits via Toffoli", checkFootnote4},
		{"§4: paper example L ≤ 2.3 at g = 10⁻², E = 11", checkEntropyExample},
		{"Eq.1 looseness: exact two-fault c₂ ≪ 3·C(G,2), predicts MC crossover", checkPairAnalysis},
		{"Cooling: BCS boost (3δ−δ³)/2 reproduced by the circuit", checkCooling},
	}
}

func checkPairAnalysis() error {
	g := core.NewGadget(gate.MAJ, 1)
	c2 := g.QuadraticCoefficient()
	bound := 3 * threshold.Choose(threshold.GNonLocalInit, 2)
	if c2 <= 0 || c2 >= bound {
		return fmt.Errorf("c₂ = %v vs bound %v", c2, bound)
	}
	malignant, total := g.MalignantPairs()
	if malignant == 0 || malignant >= total/2 {
		return fmt.Errorf("malignant pairs %d of %d", malignant, total)
	}
	return nil
}

func checkCooling() error {
	c := cooling.BCS(0, 1, 2)
	for _, delta := range []float64{0.1, 0.5} {
		q := (1 + delta) / 2
		p0 := 0.0
		for in := uint64(0); in < 8; in++ {
			w := 1.0
			for b := 0; b < 3; b++ {
				if in>>uint(b)&1 == 0 {
					w *= q
				} else {
					w *= 1 - q
				}
			}
			if c.Eval(in)&1 == 0 {
				p0 += w
			}
		}
		if got, want := 2*p0-1, cooling.Boost(delta); math.Abs(got-want) > 1e-12 {
			return fmt.Errorf("δ=%v: circuit %v vs formula %v", delta, got, want)
		}
	}
	return nil
}

func checkTable1() error {
	paper := map[uint64]uint64{
		0b000: 0b000, 0b100: 0b100, 0b010: 0b010, 0b110: 0b111,
		0b001: 0b110, 0b101: 0b011, 0b011: 0b101, 0b111: 0b001,
	}
	for in, want := range paper {
		if got := gate.MAJ.Eval(in); got != want {
			return fmt.Errorf("MAJ(%03b) = %03b, want %03b", in, got, want)
		}
	}
	return nil
}

func checkFigure1() error {
	dec := circuit.New(3).CNOT(0, 1).CNOT(0, 2).Toffoli(1, 2, 0)
	if !dec.EquivalentTo(circuit.New(3).MAJ(0, 1, 2)) {
		return fmt.Errorf("decomposition not equivalent to MAJ")
	}
	set := synth.Placements(gate.CNOT, gate.Toffoli)
	if n := synth.MinGateCount(synth.FromKind(gate.MAJ), set); n != 3 {
		return fmt.Errorf("BFS minimum = %d, want 3", n)
	}
	return nil
}

func checkRecoveryFT() error {
	c := core.Recovery()
	for _, v := range []bool{false, true} {
		var firstErr error
		sim.ForEachSingleFault(c, func(op int, val uint64) {
			if firstErr != nil {
				return
			}
			st := bitvec.New(core.RecoveryWidth)
			code.EncodeInto(st, core.RecoveryDataWires, v, 1)
			sim.RunInjected(c, st, noise.NewPlan(noise.Injection{OpIndex: op, Value: val}))
			if code.Decode(st, core.RecoveryOutputWires, 1) != v {
				firstErr = fmt.Errorf("fault (op %d, val %03b) flipped logical %v", op, val, v)
			}
		})
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}

func checkRecoveryCorrects() error {
	c := core.Recovery()
	for _, v := range []bool{false, true} {
		for _, e := range core.RecoveryDataWires {
			st := bitvec.New(core.RecoveryWidth)
			code.EncodeInto(st, core.RecoveryDataWires, v, 1)
			st.Flip(e)
			c.Run(st)
			for _, w := range core.RecoveryOutputWires {
				if st.Get(w) != v {
					return fmt.Errorf("input error at %d not corrected", e)
				}
			}
		}
	}
	return nil
}

func checkLevel1FT() error {
	g := core.NewGadget(gate.MAJ, 1)
	for in := uint64(0); in < 8; in++ {
		want := gate.MAJ.Eval(in)
		var firstErr error
		sim.ForEachSingleFault(g.Circuit, func(op int, val uint64) {
			if firstErr != nil {
				return
			}
			st := bitvec.New(g.Circuit.Width())
			for i, wires := range g.In {
				code.EncodeInto(st, wires, in>>uint(i)&1 == 1, 1)
			}
			sim.RunInjected(g.Circuit, st, noise.NewPlan(noise.Injection{OpIndex: op, Value: val}))
			for i, wires := range g.Out {
				if code.Decode(st, wires, 1) != (want>>uint(i)&1 == 1) {
					firstErr = fmt.Errorf("input %03b, fault (op %d, val %03b)", in, op, val)
				}
			}
		})
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}

func checkBlowup() error {
	for level, want := range map[int]int{0: 1, 1: 27, 2: 729} {
		if got := core.NewGadget(gate.MAJ, level).Circuit.Len(); got != want {
			return fmt.Errorf("level %d: %d ops, want %d", level, got, want)
		}
	}
	return nil
}

func checkMemoryFT() error {
	m := core.NewMemory(1, 3)
	for _, v := range []bool{false, true} {
		var firstErr error
		sim.ForEachSingleFault(m.Circuit, func(op int, val uint64) {
			if firstErr != nil {
				return
			}
			st := bitvec.New(m.Circuit.Width())
			code.EncodeInto(st, m.In, v, 1)
			sim.RunInjected(m.Circuit, st, noise.NewPlan(noise.Injection{OpIndex: op, Value: val}))
			if code.Decode(st, m.Out, 1) != v {
				firstErr = fmt.Errorf("fault (op %d, val %03b)", op, val)
			}
		})
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}

func checkRecovery2DLocal() error {
	return lattice.CheckLocal(lattice.Recovery2D(), lattice.Patch2DLayout(), nil)
}

func checkRecovery1D() error {
	c := lattice.Recovery1D()
	if c.Len() != lattice.Recovery1DOps {
		return fmt.Errorf("ops = %d, want %d", c.Len(), lattice.Recovery1DOps)
	}
	if n := lattice.Recovery1DSwapCount(); n != 9 {
		return fmt.Errorf("swaps = %d, want 9", n)
	}
	return lattice.CheckLocal(c, lattice.Line{N: lattice.Recovery1DWidth}, lattice.InitExempt)
}

func checkRecovery1DFT() error {
	c := lattice.Recovery1D()
	for _, v := range []bool{false, true} {
		var firstErr error
		sim.ForEachSingleFault(c, func(op int, val uint64) {
			if firstErr != nil {
				return
			}
			st := bitvec.New(lattice.Recovery1DWidth)
			code.EncodeInto(st, lattice.Recovery1DDataWires, v, 1)
			sim.RunInjected(c, st, noise.NewPlan(noise.Injection{OpIndex: op, Value: val}))
			if code.Decode(st, lattice.Recovery1DOutputWires, 1) != v {
				firstErr = fmt.Errorf("fault (op %d, val %03b)", op, val)
			}
		})
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}

func checkInterleaveCounts() error {
	il := lattice.NewInterleave1D()
	if len(il.Swaps) != 45 {
		return fmt.Errorf("total swaps = %d", len(il.Swaps))
	}
	if n := il.SwapsTouching(2); n != 24 {
		return fmt.Errorf("moving codeword touched by %d swaps, want 24", n)
	}
	if n := il.OpsTouching(2); n != 12 {
		return fmt.Errorf("moving codeword SWAP3 ops = %d, want 12", n)
	}
	return nil
}

func checkCycleAudits() error {
	perp := lattice.NewCycle2D(gate.MAJ).AuditSingleFaults()
	if !perp.Tolerant() {
		return fmt.Errorf("perpendicular 2D cycle has %d failures", len(perp.Failures))
	}
	for _, mk := range []struct {
		name string
		c    *lattice.Cycle
	}{
		{"1D", lattice.NewCycle1D(gate.MAJ)},
		{"parallel 2D", lattice.NewCycle2DParallel(gate.MAJ)},
	} {
		audit := mk.c.AuditSingleFaults()
		if audit.Tolerant() {
			return fmt.Errorf("%s cycle unexpectedly clean — update EXPERIMENTS.md", mk.name)
		}
		crossing := mk.c.CrossingOps()
		for op := range audit.VulnerableOps {
			if !crossing[op] {
				return fmt.Errorf("%s: op %d vulnerable but not a routing crossing", mk.name, op)
			}
		}
	}
	return nil
}

func checkG40() error {
	c := lattice.NewCycle1D(gate.MAJ)
	if got := c.CountPerCodeword(2); got != threshold.G1DInit {
		return fmt.Errorf("per-codeword count = %d, want %d", got, threshold.G1DInit)
	}
	return nil
}

func checkThresholds() error {
	want := map[int]float64{11: 165, 9: 108, 16: 360, 14: 273, 40: 2340, 38: 2109}
	for g, denom := range want {
		rho, err := threshold.Threshold(g)
		if err != nil {
			return fmt.Errorf("G=%d: %v", g, err)
		}
		if got := 1 / rho; math.Abs(got-denom) > 1e-6 {
			return fmt.Errorf("G=%d: 1/ρ = %v, want %v", g, got, denom)
		}
	}
	return nil
}

func checkTable2() error {
	want := []float64{0.13, 0.36, 0.60, 0.77, 0.88, 0.94}
	for i, row := range threshold.Table2() {
		if math.Abs(row.Ratio-want[i]) > 0.005 {
			return fmt.Errorf("k=%d: ratio %v, want %v", row.K, row.Ratio, want[i])
		}
	}
	return nil
}

func checkWorkedExample() error {
	rho := threshold.MustThreshold(threshold.GNonLocal)
	l, err := threshold.RequiredLevels(1e6, rho/10, threshold.GNonLocal)
	if err != nil || l != 2 {
		return fmt.Errorf("RequiredLevels = %d, %v", l, err)
	}
	if g := threshold.GateBlowup(threshold.GNonLocal, 2); g != 441 {
		return fmt.Errorf("gate blowup %v, want 441", g)
	}
	if s := threshold.SizeBlowup(2); s != 81 {
		return fmt.Errorf("size blowup %v, want 81", s)
	}
	return nil
}

func checkFootnote4() error {
	maj := irrev.NANDViaMAJInv()
	tof := irrev.NANDViaToffoli()
	if !maj.Correct() || !tof.Correct() {
		return fmt.Errorf("a construction does not compute NAND")
	}
	if h := maj.GarbageEntropy(); math.Abs(h-1.5) > 1e-12 {
		return fmt.Errorf("MAJ⁻¹ garbage entropy %v, want 3/2", h)
	}
	if h := tof.GarbageEntropy(); math.Abs(h-2) > 1e-12 {
		return fmt.Errorf("Toffoli garbage entropy %v, want 2", h)
	}
	return nil
}

func checkEntropyExample() error {
	// entropy.MaxLevels(1e-2, 11) ≈ 2.317
	got := math.Log(1/1e-2)/math.Log(33) + 1
	if math.Abs(got-2.317) > 0.01 {
		return fmt.Errorf("max levels = %v", got)
	}
	return nil
}
