package revft_test

// One benchmark per table and figure of the paper (see DESIGN.md §4 for the
// experiment index). Each benchmark exercises the code path that regenerates
// the corresponding artifact; `go test -bench=. -benchmem` at the repo root
// reproduces the full sweep.

import (
	"context"
	"fmt"
	"testing"

	"revft"
	"revft/internal/entropy"
	"revft/internal/exp"
	"revft/internal/gate"
	"revft/internal/lattice"
	"revft/internal/telemetry"
	"revft/internal/threshold"
	"revft/internal/vonneumann"
)

// BenchmarkTable1MAJTruthTable evaluates the MAJ gate over all eight local
// states (paper Table 1).
func BenchmarkTable1MAJTruthTable(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		for in := uint64(0); in < 8; in++ {
			sink ^= gate.MAJ.Eval(in)
		}
	}
	_ = sink
}

// BenchmarkFigure1MAJDecomposition runs the CNOT·CNOT·Toffoli construction
// of MAJ (paper Figure 1).
func BenchmarkFigure1MAJDecomposition(b *testing.B) {
	c := revft.NewCircuit(3).CNOT(0, 1).CNOT(0, 2).Toffoli(1, 2, 0)
	st := revft.NewState(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(st)
	}
}

// BenchmarkFigure2Recovery executes one noisy error-recovery cycle (paper
// Figure 2) at g = 10⁻³.
func BenchmarkFigure2Recovery(b *testing.B) {
	c := revft.Recovery()
	st := revft.NewState(c.Width())
	m := revft.UniformNoise(1e-3)
	r := revft.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		revft.RunNoisy(c, st, m, r)
	}
}

// BenchmarkScalarRecovery and BenchmarkLanesRecovery measure trial
// throughput of the two Monte Carlo engines on the Figure 2 recovery
// gadget (level-1 MAJ plus recovery) at g = 10⁻³, single worker, through
// the same harness. Per-op time is per trial, so ns/op here divided by
// ns/op there is the engines' throughput ratio.
//
// The harness keeps each worker's hit/done counts in locals and publishes
// them once, at worker exit, into two shared atomic totals. The earlier
// design gave each worker a slot in one shared counts slice; adjacent
// slots share a cache line, so per-trial writes from different workers
// invalidated each other's lines (false sharing) and multi-worker scaling
// fell visibly short of linear on the scalar engine, whose per-trial work
// is small. BenchmarkHarnessScaling shows the scaling across worker
// counts.
func BenchmarkScalarRecovery(b *testing.B) {
	g := revft.NewGadget(revft.MAJ, 1)
	m := revft.UniformNoise(1e-3)
	b.ResetTimer()
	g.LogicalErrorRate(m, b.N, 1, 1)
}

func BenchmarkLanesRecovery(b *testing.B) {
	g := revft.NewGadget(revft.MAJ, 1)
	m := revft.UniformNoise(1e-3)
	b.ResetTimer()
	g.LogicalErrorRateLanes(m, b.N, 1, 1)
}

// BenchmarkLanesBare and BenchmarkLanesInstrumented bound the telemetry
// overhead on the hottest path: the same lanes run with no registry in the
// context versus the full instrumentation (global/per-worker/lanes trial
// counters, sampled batch latency, per-gate-location fault tallies). The
// budget is 2%: CI compares the two and warns when instrumented ns/op
// exceeds bare by more than that. The design that keeps it there: harness
// counters accumulate in worker locals and flush every 16 batches, batch
// latency is timed 1 batch in 16, and fault counters are touched only on
// fault events (expected ~ops·64·g per batch, ~2 adds at g = 10⁻³).
func BenchmarkLanesBare(b *testing.B) {
	g := revft.NewGadget(revft.MAJ, 1)
	m := revft.UniformNoise(1e-3)
	b.ResetTimer()
	if _, err := g.LogicalErrorRateLanesCtx(context.Background(), m, b.N, 1, 1); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLanesInstrumented(b *testing.B) {
	g := revft.NewGadget(revft.MAJ, 1)
	m := revft.UniformNoise(1e-3)
	ctx := telemetry.NewContext(context.Background(), telemetry.New())
	b.ResetTimer()
	if _, err := g.LogicalErrorRateLanesCtx(ctx, m, b.N, 1, 1); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLanes256Bare and BenchmarkLanes512Bare measure the fused
// K-word wide engine on the same gadget and noise as BenchmarkLanesBare:
// 4- and 8-word lane blocks through the word-program compiler, with
// MAJ/UMA triples fused and fault points grouped per sampler. ns/op is
// still per trial, so BenchmarkLanesBare ns/op divided by these is the
// widening speedup; CI's bench smoke step prints the ratio.
func BenchmarkLanes256Bare(b *testing.B) {
	g := revft.NewGadget(revft.MAJ, 1)
	m := revft.UniformNoise(1e-3)
	b.ResetTimer()
	if _, err := g.LogicalErrorRateWideCtx(context.Background(), m, 4, b.N, 1, 1); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLanes512Bare(b *testing.B) {
	g := revft.NewGadget(revft.MAJ, 1)
	m := revft.UniformNoise(1e-3)
	b.ResetTimer()
	if _, err := g.LogicalErrorRateWideCtx(context.Background(), m, 8, b.N, 1, 1); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHarnessScaling runs the scalar engine on the recovery gadget
// across worker counts; ns/op is still per trial, so ideal scaling halves
// it per doubling. This is the benchmark that regressed under the old
// false-sharing counter layout.
func BenchmarkHarnessScaling(b *testing.B) {
	g := revft.NewGadget(revft.MAJ, 1)
	m := revft.UniformNoise(1e-3)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			g.LogicalErrorRate(m, b.N, w, 1)
		})
	}
}

// BenchmarkFigure3ConcatenatedGate runs one noisy trial of the level-L
// fault-tolerant MAJ gate (paper Figure 3).
func BenchmarkFigure3ConcatenatedGate(b *testing.B) {
	for _, level := range []int{1, 2} {
		b.Run(map[int]string{1: "L1", 2: "L2"}[level], func(b *testing.B) {
			g := revft.NewGadget(revft.MAJ, level)
			m := revft.UniformNoise(1e-3)
			r := revft.NewRNG(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Trial(m, r)
			}
		})
	}
}

// BenchmarkBlowupGeneration builds the level-2 fault-tolerant gadget —
// Γ₂ = 729 physical ops on 243 bits (paper §2.3).
func BenchmarkBlowupGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		revft.NewGadget(revft.MAJ, 2)
	}
}

// BenchmarkFigure4Interleave2D runs one noisy 2D logical-gate cycle (paper
// Figure 4 / §3.1).
func BenchmarkFigure4Interleave2D(b *testing.B) {
	c := revft.NewCycle2D(revft.MAJ)
	st := revft.NewState(c.Circuit.Width())
	m := revft.UniformNoise(1e-3)
	r := revft.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		revft.RunNoisy(c.Circuit, st, m, r)
	}
}

// BenchmarkFigure5SWAP3 applies the SWAP3 gate (paper Figure 5).
func BenchmarkFigure5SWAP3(b *testing.B) {
	st := revft.NewState(3)
	for i := 0; i < b.N; i++ {
		gate.SWAP3.Apply(st, 0, 1, 2)
	}
}

// BenchmarkFigure6Interleave1D generates the 45-SWAP three-codeword
// interleave schedule (paper Figure 6 / §3.2).
func BenchmarkFigure6Interleave1D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lattice.NewInterleave1D()
	}
}

// BenchmarkFigure7Recovery1D executes one noisy nearest-neighbor recovery
// (paper Figure 7).
func BenchmarkFigure7Recovery1D(b *testing.B) {
	c := revft.Recovery1D()
	st := revft.NewState(c.Width())
	m := revft.UniformNoise(1e-3)
	r := revft.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		revft.RunNoisy(c, st, m, r)
	}
}

// BenchmarkTable2Hybrid computes the hybrid 2D/1D threshold table (paper
// Table 2).
func BenchmarkTable2Hybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		threshold.Table2()
	}
}

// BenchmarkEntropyBounds evaluates the §4 entropy bounds across a g sweep.
func BenchmarkEntropyBounds(b *testing.B) {
	gs := []float64{1e-6, 1e-4, 1e-2}
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, g := range gs {
			for l := 1; l <= 3; l++ {
				sink += entropy.LowerBound(g, 8, l) + entropy.UpperBound(g, 27, l)
			}
		}
	}
	_ = sink
}

// BenchmarkEntropyMeasured measures ancilla entropy over a small batch of
// noisy recovery cycles (paper §4, measured variant).
func BenchmarkEntropyMeasured(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entropy.MeasuredRecoveryEntropy(1e-2, 500, uint64(i))
	}
}

// BenchmarkVonNeumannMultiplexing runs one multiplexed NAND on bundles of
// 100 wires (the paper's irreversible baseline, reference [18]).
func BenchmarkVonNeumannMultiplexing(b *testing.B) {
	u := vonneumann.Unit{N: 100, Eps: 0.01}
	r := revft.NewRNG(1)
	x := vonneumann.NewBundle(u.N, true)
	y := vonneumann.NewBundle(u.N, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.NAND(x, y, r)
	}
}

// BenchmarkUnprotectedModule runs the bare 4-bit adder under noise — the
// 1−(1−g)^T reference.
func BenchmarkUnprotectedModule(b *testing.B) {
	c, _ := revft.NewAdder(4)
	st := revft.NewState(c.Width())
	m := revft.UniformNoise(1e-3)
	r := revft.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		revft.RunNoisy(c, st, m, r)
	}
}

// BenchmarkFTAdderModule runs the level-1 fault-tolerant 4-bit adder module
// under noise (the §2.3 trade in action).
func BenchmarkFTAdderModule(b *testing.B) {
	c, _ := revft.NewAdder(4)
	mod := revft.CompileModule(c, 1)
	m := revft.UniformNoise(1e-3)
	r := revft.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.Trial(0, m, r)
	}
}

// BenchmarkAnalyticTables regenerates every analytic experiment table.
func BenchmarkAnalyticTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AllAnalytic()
	}
}

// BenchmarkStorageCycle runs one noisy recovery cycle of fault-tolerant
// storage (the §2 storage primitive).
func BenchmarkStorageCycle(b *testing.B) {
	m := revft.NewMemory(1, 1)
	nm := revft.UniformNoise(1e-3)
	r := revft.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Trial(true, nm, r)
	}
}

// BenchmarkBurstNoiseGadget runs a level-1 trial under the correlated
// (burst) fault process — the §2 error-model ablation.
func BenchmarkBurstNoiseGadget(b *testing.B) {
	g := revft.NewGadget(revft.MAJ, 1)
	p := revft.BurstNoise{Gate: 1e-3, Init: 1e-3, Corr: 0.5}
	r := revft.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.TrialProcess(p, r)
	}
}

// BenchmarkBennettCompile compiles an 8-bit irreversible adder netlist into
// its garbage-free reversible form (paper ref. [2]).
func BenchmarkBennettCompile(b *testing.B) {
	net := revft.RippleAdderNetlist(8)
	for i := 0; i < b.N; i++ {
		if _, err := revft.CompileNetlist(net); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeFigure1 proves Figure 1's optimality by BFS.
func BenchmarkSynthesizeFigure1(b *testing.B) {
	set := revft.SynthPlacements(revft.CNOT, revft.Toffoli)
	target := revft.SynthFromKind(revft.MAJ)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := revft.Synthesize(target, set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNANDEntropyFootnote4 computes the exact garbage entropy of both
// NAND constructions (paper footnote 4).
func BenchmarkNANDEntropyFootnote4(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += revft.NANDViaMAJInv().GarbageEntropy()
		sink += revft.NANDViaToffoli().GarbageEntropy()
	}
	_ = sink
}

// BenchmarkCycle2DParallel runs the parallel-interleave 2D cycle (the §3.1
// ablation variant).
func BenchmarkCycle2DParallel(b *testing.B) {
	c := revft.NewCycle2DParallel(revft.MAJ)
	st := revft.NewState(c.Circuit.Width())
	m := revft.UniformNoise(1e-3)
	r := revft.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		revft.RunNoisy(c.Circuit, st, m, r)
	}
}

// BenchmarkExactThreshold bisects the exact-recursion threshold.
func BenchmarkExactThreshold(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += revft.ExactThreshold(revft.GNonLocal)
	}
	_ = sink
}

// BenchmarkCoolingTree runs a depth-3 algorithmic-cooling tree (paper refs.
// [3, 5, 15]).
func BenchmarkCoolingTree(b *testing.B) {
	tr := revft.NewCoolingTree(3)
	st := revft.NewState(tr.Circuit.Width())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Circuit.Run(st)
	}
}

// BenchmarkCircuitSerialization round-trips the recovery circuit through
// the text format.
func BenchmarkCircuitSerialization(b *testing.B) {
	c := revft.Recovery()
	for i := 0; i < b.N; i++ {
		if _, err := revft.ParseCircuit(c.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}
